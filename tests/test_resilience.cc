// Overload robustness (core/resilience.h, DESIGN.md §18) and the
// satellites that rode along with it:
//
//   * WorkBudget deadline semantics: budgeted queries stop cell-exact,
//     return honest truncated partials, and the budget-less path is
//     bit-identical to the pre-budget behavior,
//   * the DQRY torn-write sweep: every prefix truncation point of a blob
//     classifies cleanly (never crashes, never mis-serves) — the query-tier
//     mirror of the journal's torn-tail classification sweep,
//   * AdmissionController: integer micro-token refill exactness, bounded
//     concurrency, bounded-wait queue, and the explicit shed accounting
//     identity (offered == admitted + shed + still-queued),
//   * decorrelated-jitter retry/backoff: envelope bounds, determinism,
//     seed decorrelation (no thundering herd), and spread,
//   * CircuitBreaker state machine, the BreakerRepairGate wired into a
//     live DapspService (suppressed epochs, kBreaker trace events,
//     scrub-heals-an-open-breaker), bit-identical at 1/2/8 engine threads,
//   * the seeded virtual-clock overload simulation: deterministic digests,
//     zero overclaims (a brownout estimate or truncated scan never claims
//     kExact — the status-lattice bugfix), kShed trace events matching the
//     counters with monotone timestamps,
//   * SnapshotStore reader-slot exhaustion: bounded spin-yield acquisition
//     under 8+ thread contention and the slots_exhausted metric.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/distance_labels.h"
#include "core/query.h"
#include "core/resilience.h"
#include "core/service.h"
#include "graph/generators.h"
#include "seq/apsp.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace dapsp::core {
namespace {

QuerySnapshot make_snapshot(NodeId n, NodeId extra, std::uint64_t seed,
                            bool with_labels) {
  const Graph g = gen::random_connected(n, extra, seed);
  const DistanceMatrix dist = seq::apsp(g);
  const std::vector<std::uint8_t> active(n, 1);
  const std::vector<RowStatus> status(n, RowStatus::kExact);
  std::unique_ptr<DistanceLabeling> labels;
  if (with_labels) {
    labels = std::make_unique<DistanceLabeling>(build_distance_labels(g, 2));
  }
  return QuerySnapshot::from_blob(encode_query_snapshot_tables(
      dist, nullptr, active, status, /*epoch=*/0, /*sequence=*/0,
      /*degraded=*/false, labels.get()));
}

// ------------------------------------------------ deadline budget semantics

TEST(WorkBudget, GrantChargesAndExhausts) {
  WorkBudget unbounded;
  EXPECT_FALSE(unbounded.exhausted());
  EXPECT_EQ(unbounded.grant(1'000), 1'000u);
  EXPECT_EQ(unbounded.used, 1'000u);

  WorkBudget b;
  b.limit = 10;
  EXPECT_EQ(b.grant(4), 4u);
  EXPECT_EQ(b.remaining(), 6u);
  EXPECT_EQ(b.grant(100), 6u);  // clipped to the remainder
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.grant(5), 0u);
}

TEST(BudgetedQueries, P2pBatchAnswersThePrefixThatFit) {
  const QuerySnapshot snap = make_snapshot(12, 8, 3, false);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId i = 0; i < 8; ++i) pairs.emplace_back(i, (i + 3) % 12);

  std::vector<QueryAnswer> full;
  snap.p2p_batch(pairs, full, nullptr);
  ASSERT_EQ(full.size(), pairs.size());

  WorkBudget b;
  b.limit = 5;
  std::vector<QueryAnswer> part;
  snap.p2p_batch(pairs, part, &b);
  ASSERT_EQ(part.size(), 5u);  // the answered prefix, cell-exact
  for (std::size_t i = 0; i < part.size(); ++i) {
    EXPECT_EQ(part[i].dist, full[i].dist);
    EXPECT_EQ(part[i].status, full[i].status);
  }
}

TEST(BudgetedQueries, KNearestTruncatesToTheScannedPrefixExactly) {
  const QuerySnapshot snap = make_snapshot(16, 10, 4, false);
  const NodeId u = 5;
  const KNearestAnswer full = snap.k_nearest(u, 4, nullptr);
  EXPECT_FALSE(full.truncated);

  WorkBudget b;
  b.limit = 9;
  const KNearestAnswer part = snap.k_nearest(u, 4, &b);
  ASSERT_TRUE(part.truncated);
  EXPECT_EQ(part.scanned, 9u);
  EXPECT_EQ(b.used, 9u);

  // The truncated answer must be exact over the scanned prefix: recompute
  // the k nearest considering only nodes v < scanned.
  const auto row = snap.dist_row(u);
  std::vector<NearNeighbor> expect;
  for (NodeId v = 0; v < part.scanned; ++v) {
    if (v == u || !snap.active(v) || row[v] == kInfDist) continue;
    expect.push_back({v, row[v]});
  }
  std::sort(expect.begin(), expect.end(), [](const auto& a, const auto& b2) {
    return a.dist != b2.dist ? a.dist < b2.dist : a.node < b2.node;
  });
  if (expect.size() > 4) expect.resize(4);
  ASSERT_EQ(part.nearest.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(part.nearest[i].node, expect[i].node);
    EXPECT_EQ(part.nearest[i].dist, expect[i].dist);
  }
}

TEST(BudgetedQueries, EccentricityTruncationIsAPrefixLowerBound) {
  const QuerySnapshot snap = make_snapshot(16, 10, 5, false);
  const NodeId u = 2;
  const EccentricityAnswer full = snap.eccentricity(u, nullptr);
  EXPECT_FALSE(full.truncated);

  WorkBudget b;
  b.limit = 7;
  const EccentricityAnswer part = snap.eccentricity(u, &b);
  ASSERT_TRUE(part.truncated);
  EXPECT_EQ(part.scanned, 7u);
  EXPECT_LE(part.ecc, full.ecc);

  const auto row = snap.dist_row(u);
  std::uint32_t expect_ecc = 0;
  for (NodeId v = 0; v < part.scanned; ++v) {
    if (v == u || !snap.active(v) || row[v] == kInfDist) continue;
    expect_ecc = std::max(expect_ecc, row[v]);
  }
  EXPECT_EQ(part.ecc, expect_ecc);
}

TEST(BudgetedQueries, AmpleBudgetMatchesTheUnbudgetedAnswer) {
  const QuerySnapshot snap = make_snapshot(12, 6, 6, false);
  WorkBudget b;
  b.limit = 1'000'000;
  const KNearestAnswer with = snap.k_nearest(3, 5, &b);
  const KNearestAnswer without = snap.k_nearest(3, 5, nullptr);
  EXPECT_FALSE(with.truncated);
  ASSERT_EQ(with.nearest.size(), without.nearest.size());
  for (std::size_t i = 0; i < with.nearest.size(); ++i) {
    EXPECT_EQ(with.nearest[i].node, without.nearest[i].node);
    EXPECT_EQ(with.nearest[i].dist, without.nearest[i].dist);
  }
}

// ------------------------------------------------------ DQRY torn-write sweep

// Satellite: the query-tier mirror of the journal's torn-tail sweep. A
// partially persisted (prefix-truncated) DQRY blob must classify cleanly at
// EVERY truncation point — never kNone, never a crash — and from_blob must
// refuse it with an exception rather than mis-serve.
void torn_sweep(bool with_labels) {
  const QuerySnapshot snap = make_snapshot(6, 3, 11, with_labels);
  const std::span<const std::uint8_t> blob = snap.bytes();
  ASSERT_EQ(classify_query_blob(blob), CheckpointError::kNone);

  for (std::size_t len = 0; len < blob.size(); ++len) {
    const auto prefix = blob.first(len);
    const CheckpointError err = classify_query_blob(prefix);
    EXPECT_NE(err, CheckpointError::kNone)
        << "truncation at " << len << "/" << blob.size()
        << " classified as intact (labels=" << with_labels << ")";
    std::vector<std::uint8_t> bytes(prefix.begin(), prefix.end());
    EXPECT_THROW(QuerySnapshot::from_blob(std::move(bytes)),
                 std::runtime_error)
        << "from_blob accepted a torn prefix of " << len << " bytes";
  }
  // And the intact blob still loads.
  std::vector<std::uint8_t> bytes(blob.begin(), blob.end());
  EXPECT_NO_THROW(QuerySnapshot::from_blob(std::move(bytes)));
}

TEST(TornBlob, EveryTruncationPointClassifiesCleanlyNoLabels) {
  torn_sweep(false);
}

TEST(TornBlob, EveryTruncationPointClassifiesCleanlyWithLabels) {
  torn_sweep(true);
}

// ----------------------------------------------------------- admission control

TEST(Admission, TokenBucketRefillIsIntegerExact) {
  AdmissionConfig cfg;
  auto& p = cfg.policy(PriorityClass::kInteractive);
  p.tokens_per_sec = 2;  // one token every 500'000 us
  p.burst = 1;
  p.max_concurrent = 100;
  AdmissionController adm(cfg);

  // The bucket starts full (one burst).
  EXPECT_EQ(adm.offer(PriorityClass::kInteractive, 0, 0).result,
            AdmitResult::kAdmitted);
  auto dec = adm.offer(PriorityClass::kInteractive, 1, 0);
  EXPECT_EQ(dec.result, AdmitResult::kShed);
  EXPECT_EQ(dec.reason, ShedReason::kRate);

  // One microsecond early: still short of a whole token.
  EXPECT_EQ(adm.offer(PriorityClass::kInteractive, 2, 499'999).result,
            AdmitResult::kShed);
  // On the boundary the refill is exact.
  EXPECT_EQ(adm.offer(PriorityClass::kInteractive, 3, 500'000).result,
            AdmitResult::kAdmitted);

  const ClassCounters& c = adm.counters(PriorityClass::kInteractive);
  EXPECT_EQ(c.offered, 4u);
  EXPECT_EQ(c.admitted, 2u);
  EXPECT_EQ(c.shed_rate, 2u);
}

TEST(Admission, ConcurrencyQueueAndQueueFullShed) {
  AdmissionConfig cfg;
  auto& p = cfg.policy(PriorityClass::kBatch);
  p.max_concurrent = 1;
  p.max_queue = 2;
  AdmissionController adm(cfg);

  EXPECT_EQ(adm.offer(PriorityClass::kBatch, 10, 0).result,
            AdmitResult::kAdmitted);
  EXPECT_EQ(adm.offer(PriorityClass::kBatch, 11, 1).result,
            AdmitResult::kQueued);
  EXPECT_EQ(adm.offer(PriorityClass::kBatch, 12, 2).result,
            AdmitResult::kQueued);
  auto dec = adm.offer(PriorityClass::kBatch, 13, 3);
  EXPECT_EQ(dec.result, AdmitResult::kShed);
  EXPECT_EQ(dec.reason, ShedReason::kQueueFull);
  EXPECT_EQ(adm.queue_depth(PriorityClass::kBatch), 2u);

  // Nothing startable while the slot is held.
  EXPECT_FALSE(adm.next_ready(PriorityClass::kBatch, 4).has_value());

  // Release: FIFO order out of the queue.
  adm.release(PriorityClass::kBatch);
  auto r1 = adm.next_ready(PriorityClass::kBatch, 5);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->id, 11u);
  adm.release(PriorityClass::kBatch);
  auto r2 = adm.next_ready(PriorityClass::kBatch, 6);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->id, 12u);

  const ClassCounters& c = adm.counters(PriorityClass::kBatch);
  // The accounting identity: every offer is admitted, shed, or still queued.
  EXPECT_EQ(c.offered, c.admitted + c.shed_total() +
                           adm.queue_depth(PriorityClass::kBatch));
  EXPECT_EQ(c.admitted, 3u);
  EXPECT_EQ(c.queued, 2u);
}

TEST(Admission, BoundedWaitReapsExpiredEntriesEvenWithoutAFreeSlot) {
  AdmissionConfig cfg;
  auto& p = cfg.policy(PriorityClass::kInteractive);
  p.max_concurrent = 1;
  p.max_queue = 4;
  p.max_wait_us = 10;
  AdmissionController adm(cfg);

  EXPECT_EQ(adm.offer(PriorityClass::kInteractive, 0, 0).result,
            AdmitResult::kAdmitted);
  EXPECT_EQ(adm.offer(PriorityClass::kInteractive, 1, 0).result,
            AdmitResult::kQueued);
  EXPECT_EQ(adm.offer(PriorityClass::kInteractive, 2, 8).result,
            AdmitResult::kQueued);

  // At t=11 request 1 (enqueued at 0) is past its wait bound; request 2 is
  // not. The slot is still held — the reap must happen anyway.
  std::vector<AdmissionController::Ready> expired;
  EXPECT_FALSE(
      adm.next_ready(PriorityClass::kInteractive, 11, &expired).has_value());
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, 1u);
  EXPECT_EQ(adm.counters(PriorityClass::kInteractive).shed_queue_wait, 1u);

  // Free the slot: request 2 starts.
  adm.release(PriorityClass::kInteractive);
  auto r = adm.next_ready(PriorityClass::kInteractive, 12, &expired);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->id, 2u);
}

// --------------------------------------------- decorrelated jitter (satellite)

TEST(Jitter, RetryDelayStaysInTheDecorrelatedEnvelope) {
  RetryPolicy p;
  p.base_us = 100;
  p.cap_us = 10'000;
  p.seed = 42;
  std::uint64_t prev = 0;
  for (std::uint32_t attempt = 1; attempt <= 20; ++attempt) {
    const std::uint64_t d = retry_delay_us(p, 7, attempt, prev);
    EXPECT_GE(d, p.base_us);
    EXPECT_LE(d, std::min<std::uint64_t>(
                     p.cap_us, 3 * std::max<std::uint64_t>(p.base_us, prev)));
    prev = d;
  }
  // Zero base means "retry immediately", not "divide by zero".
  RetryPolicy zero;
  zero.base_us = 0;
  EXPECT_EQ(retry_delay_us(zero, 1, 1, 0), 0u);
}

TEST(Jitter, DeterministicPerKeyAndDecorrelatedAcrossSeeds) {
  RetryPolicy a;
  a.seed = 1;
  RetryPolicy b = a;
  b.seed = 2;

  std::size_t diff = 0;
  std::set<std::uint64_t> distinct;
  for (std::uint64_t req = 0; req < 64; ++req) {
    const std::uint64_t da = retry_delay_us(a, req, 1, 0);
    // Same key, same delay — bit-for-bit reproducible.
    EXPECT_EQ(da, retry_delay_us(a, req, 1, 0));
    if (da != retry_delay_us(b, req, 1, 0)) ++diff;
    distinct.insert(da);
  }
  // Two replicas with different seeds must not march in lockstep (the
  // thundering-herd failure mode of the old pure-exponential backoff) ...
  EXPECT_GT(diff, 32u);
  // ... and one replica's delays must actually spread over the envelope.
  EXPECT_GT(distinct.size(), 16u);
}

TEST(Jitter, ServiceBackoffSharesTheEnvelopeAndSpreads) {
  // decorrelated_backoff_ms: [base, min(cap, 3 * max(base, prev))], keyed
  // by (seed, epoch, attempt).
  std::set<std::uint64_t> seen_a;
  std::size_t diverged = 0;
  for (std::uint64_t epoch = 1; epoch <= 64; ++epoch) {
    const std::uint64_t a = decorrelated_backoff_ms(10, 0, 1, epoch, 1);
    const std::uint64_t b = decorrelated_backoff_ms(10, 0, 2, epoch, 1);
    EXPECT_GE(a, 10u);
    EXPECT_LE(a, 30u);
    EXPECT_EQ(a, decorrelated_backoff_ms(10, 0, 1, epoch, 1));
    if (a != b) ++diverged;
    seen_a.insert(a);
  }
  EXPECT_GT(diverged, 32u);
  EXPECT_GT(seen_a.size(), 8u);
  // The envelope widens with prev and saturates at the service cap.
  EXPECT_LE(decorrelated_backoff_ms(10, 100, 1, 1, 2), 300u);
  EXPECT_LE(decorrelated_backoff_ms(10, kMaxBackoffMs, 1, 1, 2),
            kMaxBackoffMs);
  EXPECT_EQ(decorrelated_backoff_ms(0, 0, 1, 1, 1), 0u);
}

// ------------------------------------------------------------ circuit breaker

TEST(Breaker, OpensAfterConsecutiveFailuresAndCoolsDownToHalfOpen) {
  BreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.cooldown_ticks = 5;
  cfg.probe_successes = 1;
  CircuitBreaker br(cfg);

  EXPECT_TRUE(br.allow(1));
  br.record_failure(1);
  br.record_failure(2);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  // A success resets the streak — only *consecutive* failures open.
  br.record_success(3);
  br.record_failure(4);
  br.record_failure(5);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  br.record_failure(6);
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.opens(), 1u);

  // Refused during the cooldown, half-open (and admitted) after it.
  EXPECT_FALSE(br.allow(7));
  EXPECT_FALSE(br.allow(10));
  EXPECT_TRUE(br.allow(11));  // 11 - 6 >= 5
  EXPECT_EQ(br.state(), BreakerState::kHalfOpen);

  // The probe succeeds: closed, streak cleared.
  br.record_success(11);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  EXPECT_EQ(br.consecutive_failures(), 0u);
  // closed -> open -> half-open -> closed.
  EXPECT_EQ(br.transitions(), 3u);
}

TEST(Breaker, HalfOpenFailureReopensAndRestartsTheCooldown) {
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown_ticks = 4;
  CircuitBreaker br(cfg);

  br.record_failure(10);
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_TRUE(br.allow(14));
  EXPECT_EQ(br.state(), BreakerState::kHalfOpen);
  br.record_failure(14);  // the probe failed
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.opens(), 2u);
  EXPECT_FALSE(br.allow(17));  // cooldown restarted at 14
  EXPECT_TRUE(br.allow(18));
}

TEST(Breaker, SuccessWhileOpenClosesDirectly) {
  // The scrub path bypasses allow(); a certified scrub is a full-table
  // heal, so the breaker closes without a probe phase.
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown_ticks = 100;
  CircuitBreaker br(cfg);
  br.record_failure(1);
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  br.record_success(2);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  EXPECT_TRUE(br.allow(3));
}

TEST(Breaker, MultipleProbeSuccessesRequiredWhenConfigured) {
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown_ticks = 1;
  cfg.probe_successes = 2;
  CircuitBreaker br(cfg);
  br.record_failure(1);
  EXPECT_TRUE(br.allow(2));
  br.record_success(2);
  EXPECT_EQ(br.state(), BreakerState::kHalfOpen);  // one probe is not enough
  br.record_success(3);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
}

// --------------------------------------- breaker wired into the live service

struct BreakerScenario {
  std::vector<congest::TraceEvent> breaker_events;
  std::vector<std::uint8_t> outcomes;  // EpochOutcome per step
  std::uint64_t suppressed = 0;
  std::uint64_t transitions = 0;
  std::vector<std::uint8_t> final_blob;
  bool certified_at_end = false;
};

// The seeded failed-repair scenario from the PR's acceptance bar: two
// strangled epochs open the breaker, a cooldown epoch is suppressed, the
// half-open probe heals the backlog, and a final churn epoch under the
// half-open gate closes it. Runs at a configurable engine thread count.
BreakerScenario run_breaker_scenario(unsigned threads) {
  DapspService healthy(gen::cycle(12), {});
  const std::vector<std::uint8_t> blob = healthy.checkpoint_blob();

  congest::TraceLog trace;
  BreakerRepairGate gate({/*failure_threshold=*/2, /*cooldown_ticks=*/2,
                          /*probe_successes=*/2});
  ServiceConfig sc;
  sc.watchdog_rounds = 2;  // strangle: every ladder rung trips
  sc.escalate_fraction = 1.0;
  sc.backoff_base_ms = 0;
  sc.repair_gate = &gate;
  sc.engine.threads = threads;
  sc.engine.trace = &trace;
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(blob.data()), blob.size()));
  DapspService svc = DapspService::restore(in, sc, nullptr);

  BreakerScenario out;
  const auto step_with = [&](ChurnBatch b) {
    const EpochReport ep = svc.step(b);
    out.outcomes.push_back(static_cast<std::uint8_t>(ep.outcome));
  };

  ChurnBatch b1;
  b1.deltas.push_back({DeltaKind::kEdgeRemove, 0, 1});
  step_with(b1);  // strangled repair fails: breaker failure 1 of 2
  ChurnBatch b2;
  b2.deltas.push_back({DeltaKind::kEdgeRemove, 6, 7});
  step_with(b2);  // failure 2: the breaker opens

  step_with({});  // cooldown: repair suppressed, rows stay stale

  // The operator fixes the watchdog; the next allowed epoch is the
  // half-open probe over the carried-over stale backlog.
  svc.set_watchdog_rounds(0);
  step_with({});  // probe 1 of 2 succeeds: still half-open

  ChurnBatch b3;
  b3.deltas.push_back({DeltaKind::kEdgeRemove, 3, 4});
  step_with(b3);  // probe 2 of 2 succeeds: closed

  for (const congest::TraceEvent& ev : trace.events()) {
    if (ev.kind == congest::TraceEventKind::kBreaker) {
      out.breaker_events.push_back(ev);
    }
  }
  out.suppressed = svc.stats().repairs_suppressed;
  out.transitions = svc.stats().breaker_transitions;
  out.certified_at_end = svc.fully_certified();
  out.final_blob = svc.checkpoint_blob();
  return out;
}

TEST(ServiceBreaker, OpensSuppressesHalfOpensAndCloses) {
  const BreakerScenario s = run_breaker_scenario(1);

  const std::vector<std::uint8_t> want_outcomes = {
      static_cast<std::uint8_t>(EpochOutcome::kEscalated),   // strangled
      static_cast<std::uint8_t>(EpochOutcome::kEscalated),   // opens
      static_cast<std::uint8_t>(EpochOutcome::kSuppressed),  // cooldown
      static_cast<std::uint8_t>(EpochOutcome::kRepaired),    // probe 1
      static_cast<std::uint8_t>(EpochOutcome::kRepaired),    // probe 2
  };
  EXPECT_EQ(s.outcomes, want_outcomes);
  EXPECT_EQ(s.suppressed, 1u);
  EXPECT_TRUE(s.certified_at_end);

  // Observed-state changes: closed -> open, open -> half-open, half-open ->
  // closed, each a kBreaker trace event with (node = new, peer = previous).
  ASSERT_EQ(s.breaker_events.size(), 3u);
  EXPECT_EQ(s.breaker_events[0].node, 1u);  // open
  EXPECT_EQ(s.breaker_events[0].peer, 0u);
  EXPECT_EQ(s.breaker_events[1].node, 2u);  // half-open (probe 1 held it)
  EXPECT_EQ(s.breaker_events[1].peer, 1u);
  EXPECT_EQ(s.breaker_events[2].node, 0u);  // closed
  EXPECT_EQ(s.breaker_events[2].peer, 2u);
  EXPECT_EQ(s.transitions, 3u);
  for (std::size_t i = 0; i < s.breaker_events.size(); ++i) {
    EXPECT_EQ(s.breaker_events[i].aux, i + 1);  // cumulative count
  }
}

void expect_same_breaker_events(const std::vector<congest::TraceEvent>& a,
                                const std::vector<congest::TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].peer, b[i].peer);
    EXPECT_EQ(a[i].round, b[i].round);
    EXPECT_EQ(a[i].aux, b[i].aux);
  }
}

TEST(ServiceBreaker, ScenarioIsBitIdenticalAtOneTwoEightThreads) {
  const BreakerScenario t1 = run_breaker_scenario(1);
  const BreakerScenario t2 = run_breaker_scenario(2);
  const BreakerScenario t8 = run_breaker_scenario(8);
  EXPECT_EQ(t1.outcomes, t2.outcomes);
  EXPECT_EQ(t1.outcomes, t8.outcomes);
  expect_same_breaker_events(t1.breaker_events, t2.breaker_events);
  expect_same_breaker_events(t1.breaker_events, t8.breaker_events);
  EXPECT_EQ(t1.final_blob, t2.final_blob);
  EXPECT_EQ(t1.final_blob, t8.final_blob);
}

TEST(ServiceBreaker, ScrubHealsAndClosesAnOpenBreaker) {
  DapspService healthy(gen::cycle(10), {});
  const std::vector<std::uint8_t> blob = healthy.checkpoint_blob();

  BreakerRepairGate gate({/*failure_threshold=*/1, /*cooldown_ticks=*/100,
                          /*probe_successes=*/1});
  ServiceConfig sc;
  sc.watchdog_rounds = 2;
  sc.escalate_fraction = 1.0;
  sc.backoff_base_ms = 0;
  sc.repair_gate = &gate;
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(blob.data()), blob.size()));
  DapspService svc = DapspService::restore(in, sc, nullptr);

  ChurnBatch b;
  b.deltas.push_back({DeltaKind::kEdgeRemove, 0, 1});
  svc.step(b);
  EXPECT_EQ(gate.state(), 1u);  // open after one strangled failure

  // While open, repairs are suppressed...
  EXPECT_EQ(svc.step({}).outcome, EpochOutcome::kSuppressed);

  // ...but the operator scrub bypasses the gate, heals everything, and its
  // reported success closes the breaker without waiting out the cooldown.
  svc.set_watchdog_rounds(0);
  const EpochReport sep = svc.scrub();
  EXPECT_TRUE(sep.certified);
  EXPECT_EQ(gate.state(), 0u);
  EXPECT_TRUE(svc.fully_certified());
}

// ----------------------------------------------------------- overload sim

OverloadConfig overload_config(std::uint64_t seed) {
  OverloadConfig cfg;
  cfg.seed = seed;
  cfg.requests = 4'000;
  cfg.arrivals_per_sec = 500'000;
  cfg.deadline_us = 3;  // 48 cells: fits a p2p batch, truncates a 64-row
  cfg.batch_pairs = 8;
  cfg.k_nearest_k = 4;

  auto& inter = cfg.admission.policy(PriorityClass::kInteractive);
  inter.max_concurrent = 2;
  inter.max_queue = 8;
  inter.max_wait_us = 200;
  auto& batch = cfg.admission.policy(PriorityClass::kBatch);
  batch.max_concurrent = 1;
  batch.max_queue = 4;
  batch.max_wait_us = 500;
  auto& bg = cfg.admission.policy(PriorityClass::kBackground);
  bg.tokens_per_sec = 50'000;
  bg.burst = 2;
  bg.max_concurrent = 1;
  bg.max_queue = 2;
  bg.max_wait_us = 500;

  cfg.brownout.enter_queue_depth = 4;
  cfg.brownout.exit_queue_depth = 1;

  cfg.retry.max_attempts = 3;
  cfg.retry.base_us = 2;
  cfg.retry.cap_us = 50;
  cfg.retry.seed = seed;
  cfg.transient_failure_ppm = 50'000;  // 5% per attempt
  return cfg;
}

TEST(OverloadSim, DeterministicDigestAndAccountingIdentity) {
  const QuerySnapshot snap = make_snapshot(64, 40, 9, true);
  const OverloadConfig cfg = overload_config(21);

  const SimReport a = run_overload_sim(snap, cfg);
  const SimReport b = run_overload_sim(snap, cfg);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.end_us, b.end_us);
  EXPECT_EQ(a.shed_total(), b.shed_total());
  EXPECT_EQ(a.approximate_served, b.approximate_served);

  // Every offered request is admitted or explicitly shed — no silent
  // queueing (the queue fully drains by the end of the run).
  EXPECT_EQ(a.offered, cfg.requests);
  EXPECT_EQ(a.offered, a.admitted + a.shed_total());
  EXPECT_EQ(a.completed, a.admitted);
  EXPECT_EQ(a.completed, a.exact_served + a.stale_served +
                             a.approximate_served + a.deadline_truncated);
  // The honesty invariant the whole layer exists for.
  EXPECT_EQ(a.overclaims, 0u);
  // Retry bookkeeping: every transient failure either retried or exhausted.
  EXPECT_EQ(a.transient_failures, a.retries + a.retry_exhausted);

  // A different seed genuinely changes the run.
  const OverloadConfig other = overload_config(22);
  EXPECT_NE(run_overload_sim(snap, other).digest, a.digest);
}

TEST(OverloadSim, OverloadShedsBrownsOutAndTruncatesVisibly) {
  const QuerySnapshot snap = make_snapshot(64, 40, 9, true);
  const OverloadConfig cfg = overload_config(33);
  const SimReport rep = run_overload_sim(snap, cfg);

  // Offered at several times saturation: shedding must be explicit and
  // non-trivial, the brownout must engage, and heavy exact scans that ran
  // under the 3 us deadline must disclose truncation.
  EXPECT_GT(rep.shed_total(), 0u);
  EXPECT_GT(rep.brownout_enters, 0u);
  EXPECT_GT(rep.approximate_served, 0u);
  EXPECT_GT(rep.deadline_truncated, 0u);
  EXPECT_GT(rep.retries, 0u);
  EXPECT_EQ(rep.overclaims, 0u);
  EXPECT_GT(rep.max_total_queued, 0u);
}

TEST(OverloadSim, BrownoutDisabledServesNoEstimates) {
  const QuerySnapshot snap = make_snapshot(64, 40, 9, true);
  OverloadConfig cfg = overload_config(5);
  cfg.brownout = BrownoutPolicy{};  // disabled
  const SimReport rep = run_overload_sim(snap, cfg);
  EXPECT_EQ(rep.approximate_served, 0u);
  EXPECT_EQ(rep.brownout_enters, 0u);
  EXPECT_EQ(rep.overclaims, 0u);
}

TEST(OverloadSim, NoLabelSectionMeansBrownoutFallsBackToExact) {
  // Without a label section the brownout ladder has nothing to downgrade
  // to: heavy queries stay exact (and pay for it), never kApproximate.
  const QuerySnapshot snap = make_snapshot(64, 40, 9, false);
  const SimReport rep = run_overload_sim(snap, overload_config(5));
  EXPECT_EQ(rep.approximate_served, 0u);
  EXPECT_EQ(rep.overclaims, 0u);
}

TEST(OverloadSim, ShedTraceEventsMatchCountersAndStayMonotone) {
  const QuerySnapshot snap = make_snapshot(64, 40, 9, true);
  const OverloadConfig cfg = overload_config(44);
  congest::TraceLog trace;
  const SimReport rep = run_overload_sim(snap, cfg, &trace);

  std::uint64_t shed_events = 0;
  std::uint64_t last_round = 0;
  for (const congest::TraceEvent& ev : trace.events()) {
    ASSERT_EQ(ev.kind, congest::TraceEventKind::kShed);
    ++shed_events;
    EXPECT_LE(ev.peer, 2u);  // priority class
    EXPECT_LE(ev.aux, 2u);   // shed reason
    EXPECT_GE(ev.round, last_round) << "shed timestamps must be monotone";
    last_round = ev.round;
  }
  EXPECT_EQ(shed_events, rep.shed_total());
  EXPECT_GT(shed_events, 0u);
}

TEST(OverloadSim, UnloadedRunShedsNothing) {
  const QuerySnapshot snap = make_snapshot(32, 20, 9, true);
  OverloadConfig cfg = overload_config(7);
  cfg.requests = 500;
  cfg.transient_failure_ppm = 0;
  // Far below saturation for every class; disable the background rate cap.
  cfg.admission.policy(PriorityClass::kBackground).tokens_per_sec = 0;
  cfg.arrivals_per_sec = saturation_arrivals_per_sec(cfg, 32) / 8;
  const SimReport rep = run_overload_sim(snap, cfg);
  EXPECT_EQ(rep.shed_total(), 0u);
  EXPECT_EQ(rep.admitted, rep.offered);
  EXPECT_EQ(rep.overclaims, 0u);
}

TEST(OverloadSim, HealthReportRollsUpAndExportsMetrics) {
  const QuerySnapshot snap = make_snapshot(64, 40, 9, true);
  const SimReport rep = run_overload_sim(snap, overload_config(3));
  const HealthReport h = rep.health(&snap);

  EXPECT_EQ(h.offered, rep.offered);
  EXPECT_EQ(h.shed_total(), rep.shed_total());
  EXPECT_EQ(h.approximate_served, rep.approximate_served);
  EXPECT_EQ(h.snapshot_epoch, snap.epoch());
  EXPECT_EQ(h.stale_rows, 0u);  // the static snapshot is all-exact

  MetricsRegistry reg;
  h.to_metrics(reg);
  bool found = false;
  for (const auto& [name, value] : reg.counters()) {
    if (name == "resilience_shed_total") {
      EXPECT_EQ(value, rep.shed_total());
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(h.debug_string().find("breaker="), std::string::npos);
  EXPECT_NE(h.debug_string().find("shed="), std::string::npos);
}

TEST(ServeStatusLattice, NamesAndRowEmbedding) {
  EXPECT_EQ(serve_status_from_row(RowStatus::kExact), ServeStatus::kExact);
  EXPECT_EQ(serve_status_from_row(RowStatus::kRepaired),
            ServeStatus::kRepaired);
  EXPECT_EQ(serve_status_from_row(RowStatus::kStale), ServeStatus::kStale);
  EXPECT_STREQ(to_string(ServeStatus::kApproximate), "approximate");
  EXPECT_STREQ(to_string(ServeStatus::kDeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(to_string(ServeStatus::kShed), "shed");
  EXPECT_STREQ(to_string(BreakerState::kHalfOpen), "half-open");
  EXPECT_STREQ(to_string(PriorityClass::kBackground), "background");
  EXPECT_STREQ(to_string(ShedReason::kQueueWait), "queue-wait");
}

// ------------------------------------- reader-slot exhaustion (satellite)

TEST(ReaderSlots, ExhaustionThrowsAfterTheSpinBudgetAndCounts) {
  SnapshotStore store;
  std::vector<std::unique_ptr<SnapshotReader>> readers;
  for (std::size_t i = 0; i < kMaxSnapshotReaders; ++i) {
    readers.push_back(std::make_unique<SnapshotReader>(store));
  }
  EXPECT_EQ(store.slots_exhausted(), 0u);
  EXPECT_THROW(SnapshotReader(store, /*max_spins=*/4), std::runtime_error);
  // Counted once per contended registration, not once per sweep.
  EXPECT_EQ(store.slots_exhausted(), 1u);
  EXPECT_THROW(SnapshotReader(store, /*max_spins=*/4), std::runtime_error);
  EXPECT_EQ(store.slots_exhausted(), 2u);
}

TEST(ReaderSlots, SpinYieldOutlastsATransientFullHouse) {
  SnapshotStore store;
  std::vector<std::unique_ptr<SnapshotReader>> readers;
  for (std::size_t i = 0; i < kMaxSnapshotReaders; ++i) {
    readers.push_back(std::make_unique<SnapshotReader>(store));
  }

  // A late reader spins while the house is full; once one slot frees it
  // must claim it instead of throwing.
  std::thread late([&store] {
    SnapshotReader reader(store, /*max_spins=*/100'000'000);
    SnapshotRef ref = reader.acquire();  // empty store: just exercises it
    EXPECT_FALSE(ref);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  readers.pop_back();  // free one slot
  late.join();
  EXPECT_GE(store.slots_exhausted(), 1u);
}

TEST(ReaderSlots, EightThreadChurnOverASaturatedStoreNeverFailsSpuriously) {
  SnapshotStore store;
  // 60 persistent readers leave 4 slots for 8 churning threads: every
  // construction contends, many sweeps find the house momentarily full.
  std::vector<std::unique_ptr<SnapshotReader>> persistent;
  for (std::size_t i = 0; i < kMaxSnapshotReaders - 4; ++i) {
    persistent.push_back(std::make_unique<SnapshotReader>(store));
  }

  std::vector<std::thread> churn;
  for (unsigned t = 0; t < 8; ++t) {
    churn.emplace_back([&store] {
      for (int i = 0; i < 400; ++i) {
        SnapshotReader reader(store, /*max_spins=*/100'000'000);
        SnapshotRef ref = reader.acquire();
      }
    });
  }
  for (std::thread& th : churn) th.join();
  // No throw above is the assertion; the store must still be functional.
  EXPECT_NO_THROW({ SnapshotReader after(store); });
}

}  // namespace
}  // namespace dapsp::core
