// Fault injection and reliable delivery: plan validation, drop/duplicate/
// delay/link-failure/crash semantics, determinism of faulty runs, bounded
// outcomes, and the headline guarantee — paper algorithms wrapped in the
// ReliableAdapter compute oracle-exact distances on lossy transports.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <memory>
#include <vector>

#include "congest/engine.h"
#include "congest/faults.h"
#include "congest/reliable.h"
#include "core/certify.h"
#include "core/pebble_apsp.h"
#include "core/ssp.h"
#include "graph/generators.h"
#include "seq/apsp.h"
#include "seq/bfs.h"

namespace dapsp::congest {
namespace {

// Node 0 sends one 1-field message to each neighbor in round 0; everyone
// records what arrives and when.
class OneShot final : public Process {
 public:
  explicit OneShot(NodeId id) : id_(id) {}

  void on_round(RoundCtx& ctx) override {
    for (const Received& r : ctx.inbox()) {
      received_.push_back(r.msg);
      recv_rounds_.push_back(ctx.round());
    }
    if (id_ == 0 && ctx.round() == 0) ctx.send_all(Message::make(1, 42));
    done_ = true;
  }
  bool done() const override { return done_; }

  std::vector<Message> received_;
  std::vector<std::uint64_t> recv_rounds_;

 private:
  NodeId id_;
  bool done_ = false;
};

// An *unprotected* BFS flood: node 0 floods distance waves; nodes adopt the
// first distance heard and forward it once. Correct in the idealized model,
// silently wrong under loss — the negative control for the adapter tests.
class NaiveFlood final : public Process {
 public:
  explicit NaiveFlood(NodeId id) : id_(id), dist_(id == 0 ? 0 : kInfDist) {}

  void on_round(RoundCtx& ctx) override {
    for (const Received& r : ctx.inbox()) {
      dist_ = std::min(dist_, r.msg.f[0] + 1);
    }
    if (dist_ != kInfDist && !sent_) {
      ctx.send_all(Message::make(1, dist_));
      sent_ = true;
    }
  }
  bool done() const override { return dist_ == kInfDist || sent_; }

  std::uint32_t dist() const { return dist_; }

 private:
  NodeId id_;
  std::uint32_t dist_;
  bool sent_ = false;
};

std::vector<std::uint32_t> flood_distances(Engine& e) {
  std::vector<std::uint32_t> out;
  for (NodeId v = 0; v < e.graph().num_nodes(); ++v) {
    out.push_back(e.process_as<NaiveFlood>(v).dist());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Plan validation and engine config validation

TEST(FaultPlan, RejectsBadProbabilities) {
  const Graph g = gen::path(3);
  for (double p : {-0.1, 1.5}) {
    FaultPlan plan;
    plan.drop_prob = p;
    EXPECT_THROW(FaultInjector(g, plan), std::invalid_argument) << p;
  }
  FaultPlan nan_plan;
  nan_plan.duplicate_prob = std::nan("1");
  EXPECT_THROW(FaultInjector(g, nan_plan), std::invalid_argument);
}

TEST(FaultPlan, RejectsInconsistentDelay) {
  const Graph g = gen::path(3);
  FaultPlan plan;
  plan.delay_prob = 0.5;  // but max_extra_delay == 0
  EXPECT_THROW(FaultInjector(g, plan), std::invalid_argument);
  plan.max_extra_delay = kMaxExtraDelay + 1;
  EXPECT_THROW(FaultInjector(g, plan), std::invalid_argument);
}

TEST(FaultPlan, RejectsUnknownEdgesAndNodes) {
  const Graph g = gen::path(3);  // edges 0-1, 1-2
  FaultPlan plan;
  plan.edge_drop_overrides.push_back({0, 2, 0.5});  // not an edge
  EXPECT_THROW(FaultInjector(g, plan), std::invalid_argument);
  plan.edge_drop_overrides.clear();
  plan.crashes.push_back({7, 3});  // no node 7
  EXPECT_THROW(FaultInjector(g, plan), std::invalid_argument);
}

TEST(FaultPlan, RejectsMalformedLinkFailures) {
  const Graph g = gen::path(3);  // edges 0-1, 1-2
  {
    FaultPlan plan;
    plan.link_failures.push_back({0, 5, 0});  // endpoint out of range
    EXPECT_THROW(FaultInjector(g, plan), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.link_failures.push_back({0, 2, 0});  // not an edge
    EXPECT_THROW(FaultInjector(g, plan), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.link_failures.push_back({1, 1, 0});  // self-loop
    EXPECT_THROW(FaultInjector(g, plan), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.edge_drop_overrides.push_back({2, 2, 0.5});  // self-loop override
    EXPECT_THROW(FaultInjector(g, plan), std::invalid_argument);
  }
}

TEST(Engine, RejectsEmptyGraph) {
  const Graph g;
  EXPECT_THROW(Engine e(g), std::invalid_argument);
}

TEST(Engine, RejectsZeroBandwidth) {
  const Graph g = gen::path(2);
  EngineConfig cfg;
  cfg.bandwidth_ids = 0;
  EXPECT_THROW(Engine e(g, cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Primitive fault semantics on a two-node wire

Engine make_wire(const Graph& g, FaultPlan plan) {
  EngineConfig cfg;
  cfg.faults = plan;
  return Engine(g, cfg);
}

TEST(Faults, CertainDropLosesTheMessage) {
  const Graph g = gen::path(2);
  FaultPlan plan;
  plan.drop_prob = 1.0;
  Engine e = make_wire(g, plan);
  e.init([](NodeId v) { return std::make_unique<OneShot>(v); });
  const RunStats s = e.run();
  EXPECT_TRUE(e.process_as<OneShot>(1).received_.empty());
  EXPECT_EQ(s.messages, 1u);  // it was sent (and charged) ...
  EXPECT_EQ(s.messages_dropped, 1u);  // ... then lost
}

TEST(Faults, CertainDuplicationDeliversTwice) {
  const Graph g = gen::path(2);
  FaultPlan plan;
  plan.duplicate_prob = 1.0;
  Engine e = make_wire(g, plan);
  e.init([](NodeId v) { return std::make_unique<OneShot>(v); });
  const RunStats s = e.run();
  ASSERT_EQ(e.process_as<OneShot>(1).received_.size(), 2u);
  EXPECT_EQ(s.messages, 1u);
  EXPECT_EQ(s.messages_duplicated, 1u);
}

TEST(Faults, DelayArrivesLateAndHoldsQuiescence) {
  const Graph g = gen::path(2);
  FaultPlan plan;
  plan.delay_prob = 1.0;
  plan.max_extra_delay = 3;
  Engine e = make_wire(g, plan);
  e.init([](NodeId v) { return std::make_unique<OneShot>(v); });
  const RunStats s = e.run();
  const auto& p1 = e.process_as<OneShot>(1);
  ASSERT_EQ(p1.received_.size(), 1u);
  // Normal latency is 1 round; the extra delay is uniform in [1, 3].
  EXPECT_GE(p1.recv_rounds_[0], 2u);
  EXPECT_LE(p1.recv_rounds_[0], 4u);
  EXPECT_EQ(s.messages_delayed, 1u);
  // The run did not stop before the delayed message landed.
  EXPECT_EQ(s.rounds, p1.recv_rounds_[0] + 1);
}

TEST(Faults, LinkFailureCutsBothDirections) {
  const Graph g = gen::path(2);
  // Node 0 sends every round; the link dies at round 2.
  class Beacon final : public Process {
   public:
    explicit Beacon(NodeId id) : id_(id) {}
    void on_round(RoundCtx& ctx) override {
      for (const Received& r : ctx.inbox()) last_recv_ = ctx.round(), (void)r;
      if (ctx.round() < 5) ctx.send_all(Message::make(1, id_));
    }
    bool done() const override { return true; }
    std::uint64_t last_recv_ = 0;

   private:
    NodeId id_;
  };
  FaultPlan plan;
  plan.link_failures.push_back({0, 1, 2});
  EngineConfig cfg;
  cfg.faults = plan;
  cfg.max_rounds = 10;
  Engine e(g, cfg);
  e.init([](NodeId v) { return std::make_unique<Beacon>(v); });
  const RunStats s = e.run_rounds(8);
  // Sends from rounds 0 and 1 got through (delivered rounds 1 and 2) in
  // both directions; everything later died on the failed link.
  EXPECT_EQ(e.process_as<Beacon>(0).last_recv_, 2u);
  EXPECT_EQ(e.process_as<Beacon>(1).last_recv_, 2u);
  EXPECT_EQ(s.messages_dropped, 2u * 3u);  // rounds 2,3,4 in each direction
}

TEST(Faults, CrashStopSilencesNode) {
  const Graph g = gen::path(3);
  // Everyone beacons every round; node 2 crashes at round 3.
  class Beacon final : public Process {
   public:
    void on_round(RoundCtx& ctx) override {
      rounds_run_ = ctx.round() + 1;
      received_ += ctx.inbox().size();
      if (ctx.round() < 6) ctx.send_all(Message::make(1, 7));
    }
    bool done() const override { return true; }
    std::uint64_t rounds_run_ = 0;
    std::size_t received_ = 0;
  };
  FaultPlan plan;
  plan.crashes.push_back({2, 3});
  EngineConfig cfg;
  cfg.faults = plan;
  Engine e(g, cfg);
  e.init([](NodeId) { return std::make_unique<Beacon>(); });
  const RunStats s = e.run_rounds(8);
  EXPECT_EQ(s.nodes_crashed, 1u);
  // The crashed node executed exactly rounds 0..2.
  EXPECT_EQ(e.process_as<Beacon>(2).rounds_run_, 3u);
  // Node 1 heard node 2's rounds 0..2 sends (rounds 1..3) plus node 0's
  // rounds 0..5 sends.
  EXPECT_EQ(e.process_as<Beacon>(1).received_, 3u + 6u);
  // Node 2's inbound deliveries from round 3 on vanished: node 1 sent
  // rounds 0..5 towards it, and the deliveries due at rounds 3..6 (sent in
  // rounds 2..5) were absorbed by the crash.
  EXPECT_EQ(s.messages_dropped, 4u);
}

TEST(Faults, CrashAtRoundZeroNeverRuns) {
  const Graph g = gen::path(2);
  FaultPlan plan;
  plan.crashes.push_back({1, 0});
  Engine e = make_wire(g, plan);
  e.init([](NodeId v) { return std::make_unique<OneShot>(v); });
  const RunStats s = e.run();
  EXPECT_EQ(s.nodes_crashed, 1u);
  EXPECT_TRUE(e.process_as<OneShot>(1).received_.empty());
  EXPECT_EQ(s.messages_dropped, 1u);
}

// ---------------------------------------------------------------------------
// Determinism and the trivial-plan guarantee

TEST(Faults, FaultyRunsAreReproducible) {
  const Graph g = gen::random_connected(24, 20, 9);
  FaultPlan plan;
  plan.seed = 1234;
  plan.drop_prob = 0.2;
  plan.duplicate_prob = 0.1;
  plan.delay_prob = 0.1;
  plan.max_extra_delay = 4;
  auto run_once = [&] {
    EngineConfig cfg;
    cfg.faults = plan;
    Engine e(g, cfg);
    e.init([](NodeId v) { return std::make_unique<NaiveFlood>(v); });
    const RunStats s = e.run();
    return std::make_pair(s, flood_distances(e));
  };
  const auto [s1, d1] = run_once();
  const auto [s2, d2] = run_once();
  EXPECT_EQ(s1.rounds, s2.rounds);
  EXPECT_EQ(s1.messages, s2.messages);
  EXPECT_EQ(s1.total_bits, s2.total_bits);
  EXPECT_EQ(s1.messages_dropped, s2.messages_dropped);
  EXPECT_EQ(s1.messages_delayed, s2.messages_delayed);
  EXPECT_EQ(s1.messages_duplicated, s2.messages_duplicated);
  EXPECT_EQ(d1, d2);
}

TEST(Faults, TrivialPlanIsBitIdenticalToNoPlan) {
  const Graph g = gen::petersen();
  core::ApspOptions with, without;
  with.engine.faults = FaultPlan{};  // present but injects nothing
  ASSERT_TRUE(with.engine.faults->trivial());
  const auto a = core::run_pebble_apsp(g, with);
  const auto b = core::run_pebble_apsp(g, without);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.total_bits, b.stats.total_bits);
  EXPECT_EQ(a.stats.messages_dropped, 0u);
  EXPECT_TRUE(a.dist == b.dist);
}

TEST(Faults, PebbleApspDeterministicAcrossRuns) {
  const Graph g = gen::random_connected(16, 12, 5);
  const auto a = core::run_pebble_apsp(g);
  const auto b = core::run_pebble_apsp(g);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.total_bits, b.stats.total_bits);
  EXPECT_TRUE(a.dist == b.dist);
}

// ---------------------------------------------------------------------------
// run_bounded outcomes

TEST(RunBounded, ReportsCompletion) {
  const Graph g = gen::path(2);
  Engine e(g);
  e.init([](NodeId v) { return std::make_unique<OneShot>(v); });
  const Outcome out = e.run_bounded();
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.status, RunStatus::kCompleted);
  EXPECT_EQ(out.stats.messages, 1u);
  EXPECT_TRUE(out.message.empty());
}

TEST(RunBounded, ReportsRoundLimitWithPartialStats) {
  const Graph g = gen::path(2);
  class Chatter final : public Process {
   public:
    void on_round(RoundCtx& ctx) override { ctx.send_all(Message::make(1)); }
    bool done() const override { return false; }
  };
  EngineConfig cfg;
  cfg.max_rounds = 50;
  Engine e(g, cfg);
  e.init([](NodeId) { return std::make_unique<Chatter>(); });
  const Outcome out = e.run_bounded();
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status, RunStatus::kRoundLimit);
  EXPECT_EQ(out.stats.rounds, 50u);  // stats up to the stall
  EXPECT_EQ(out.stats.messages, 2u * 50u);
  EXPECT_NE(out.message.find("round limit"), std::string::npos);
  EXPECT_STREQ(to_string(out.status), "round-limit");
}

TEST(RunBounded, ReportsCongestion) {
  const Graph g = gen::path(2);
  class Blaster final : public Process {
   public:
    void on_round(RoundCtx& ctx) override {
      for (int i = 0; i < 20; ++i) ctx.send(0, Message::make(1, 2, 3, 4, 5));
    }
    bool done() const override { return false; }
  };
  Engine e(g);
  e.init([](NodeId) { return std::make_unique<Blaster>(); });
  const Outcome out = e.run_bounded();
  EXPECT_EQ(out.status, RunStatus::kCongestion);
  EXPECT_NE(out.message.find("bandwidth exceeded"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The reliable layer: oracle-exact algorithms on lossy transports

FaultPlan lossy_plan(double drop, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = drop;
  plan.duplicate_prob = drop / 2;
  plan.delay_prob = drop / 2;
  plan.max_extra_delay = drop > 0 ? 3 : 0;
  return plan;
}

std::vector<Graph> test_families() {
  std::vector<Graph> out;
  out.push_back(gen::path(8));
  out.push_back(gen::grid(3, 4));
  out.push_back(gen::petersen());
  out.push_back(gen::random_connected(14, 10, 21));
  return out;
}

TEST(Reliable, WrappedFloodMatchesOracleUnderLoss) {
  for (const Graph& g : test_families()) {
    const auto oracle = seq::bfs(g, 0);
    for (double drop : {0.0, 0.1, 0.3}) {
      EngineConfig cfg;
      if (drop > 0) cfg.faults = lossy_plan(drop, 77);
      cfg.max_rounds = 500000;
      apply_reliable(cfg);
      Engine e(g, cfg);
      e.init([](NodeId v) { return std::make_unique<NaiveFlood>(v); });
      const Outcome out = e.run_bounded();
      ASSERT_TRUE(out.ok()) << g.summary() << " drop=" << drop << ": "
                            << out.message;
      EXPECT_EQ(flood_distances(e), oracle.dist)
          << g.summary() << " drop=" << drop;
    }
  }
}

TEST(Reliable, WrappedPebbleApspMatchesOracleUnderLoss) {
  for (const Graph& g : test_families()) {
    const DistanceMatrix oracle = seq::apsp(g);
    for (double drop : {0.1, 0.3}) {
      core::ApspOptions opt;
      opt.engine.faults = lossy_plan(drop, 4242);
      opt.engine.max_rounds = 500000;
      apply_reliable(opt.engine);
      const auto r = core::run_pebble_apsp(g, opt);
      EXPECT_TRUE(r.dist == oracle) << g.summary() << " drop=" << drop;
      EXPECT_GT(r.stats.messages_dropped, 0u);
    }
  }
}

TEST(Reliable, WrappedSspMatchesOracleUnderLoss) {
  for (const Graph& g : test_families()) {
    const NodeId n = g.num_nodes();
    const std::vector<NodeId> sources = {0, n / 2, n - 1};
    for (double drop : {0.1, 0.3}) {
      core::SspOptions opt;
      opt.engine.faults = lossy_plan(drop, 99);
      opt.engine.max_rounds = 500000;
      apply_reliable(opt.engine);
      const auto r = core::run_ssp(g, sources, opt);
      for (NodeId s : sources) {
        const auto oracle = seq::bfs(g, s);
        for (NodeId v = 0; v < n; ++v) {
          ASSERT_EQ(r.delta[v][s], oracle.dist[v])
              << g.summary() << " drop=" << drop << " source=" << s
              << " node=" << v;
        }
      }
    }
  }
}

TEST(Reliable, ZeroFaultWrappedRunStillExact) {
  // The synchronizer alone (no fault plan at all) must not distort results.
  const Graph g = gen::grid(3, 4);
  core::ApspOptions opt;
  apply_reliable(opt.engine);
  const auto r = core::run_pebble_apsp(g, opt);
  EXPECT_TRUE(r.dist == seq::apsp(g));
  EXPECT_EQ(r.stats.messages_dropped, 0u);
}

TEST(Reliable, WrappedFaultyRunIsReproducible) {
  const Graph g = gen::petersen();
  auto run_once = [&] {
    core::ApspOptions opt;
    opt.engine.faults = lossy_plan(0.2, 31337);
    opt.engine.max_rounds = 500000;
    apply_reliable(opt.engine);
    return core::run_pebble_apsp(g, opt);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.total_bits, b.stats.total_bits);
  EXPECT_EQ(a.stats.messages_dropped, b.stats.messages_dropped);
  EXPECT_EQ(a.stats.messages_delayed, b.stats.messages_delayed);
  EXPECT_EQ(a.stats.messages_duplicated, b.stats.messages_duplicated);
  EXPECT_TRUE(a.dist == b.dist);
}

TEST(Reliable, UnprotectedFloodFailsDetectablyUnderLoss) {
  // Negative control: the same flood *without* the adapter on the same lossy
  // wire must not silently pass — either it stalls, or its distances are
  // provably wrong against the oracle.
  const Graph g = gen::path(12);
  const auto oracle = seq::bfs(g, 0);
  FaultPlan plan;
  plan.seed = 5;
  plan.drop_prob = 0.4;
  EngineConfig cfg;
  cfg.faults = plan;
  cfg.max_rounds = 10000;
  Engine e(g, cfg);
  e.init([](NodeId v) { return std::make_unique<NaiveFlood>(v); });
  const Outcome out = e.run_bounded();
  const bool silently_ok = out.ok() && flood_distances(e) == oracle.dist;
  EXPECT_FALSE(silently_ok);
  EXPECT_GT(out.stats.messages_dropped, 0u);
}

TEST(Reliable, AdapterRejectsBadConfig) {
  EXPECT_THROW(
      ReliableAdapter(std::make_unique<NaiveFlood>(0), ReliableConfig{1}),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Failure detection

// Stays busy until the failure detector reports a dead neighbor; records the
// verdicts it receives.
class DownProbe final : public Process {
 public:
  void on_round(RoundCtx& ctx) override {
    if (ctx.round() == 0) ctx.send_all(Message::make(1, 1));
  }
  bool done() const override { return !downs.empty(); }
  void on_neighbor_down(std::uint32_t index, std::uint64_t vround) override {
    downs.push_back({index, vround});
  }
  std::vector<std::pair<std::uint32_t, std::uint64_t>> downs;
};

TEST(Detector, DelayOnlyPlansNeverSuspect) {
  // With the globally bounded reordering horizon, the default suspect_after
  // makes false suspicion impossible: delay-only runs complete exactly, with
  // zero NeighborDown verdicts.
  for (const Graph& g : test_families()) {
    FaultPlan plan;
    plan.seed = 11;
    plan.delay_prob = 0.3;
    plan.max_extra_delay = kMaxExtraDelay;
    EngineConfig cfg;
    cfg.faults = plan;
    cfg.max_rounds = 500000;
    apply_reliable(cfg);
    Engine e(g, cfg);
    e.init([](NodeId v) { return std::make_unique<NaiveFlood>(v); });
    const Outcome out = e.run_bounded();
    ASSERT_TRUE(out.ok()) << g.summary() << ": " << out.message;
    EXPECT_EQ(out.stats.neighbors_suspected, 0u) << g.summary();
    EXPECT_EQ(flood_distances(e), seq::bfs(g, 0).dist) << g.summary();
  }
}

TEST(Detector, DeclaresCrashedNeighborAndNotifiesInner) {
  const Graph g = gen::path(2);
  FaultPlan plan;
  plan.crashes.push_back({1, 5});
  EngineConfig cfg;
  cfg.faults = plan;
  cfg.max_rounds = 5000;
  apply_reliable(cfg);
  Engine e(g, cfg);
  e.init([](NodeId) { return std::make_unique<DownProbe>(); });
  const Outcome out = e.run_bounded();
  EXPECT_EQ(out.status, RunStatus::kDegraded);
  EXPECT_TRUE(out.terminated());
  EXPECT_EQ(out.stats.nodes_crashed, 1u);
  EXPECT_EQ(out.stats.neighbors_suspected, 1u);
  // The verdict reached the inner process, naming the right edge.
  const auto& probe = e.process_as<DownProbe>(0);
  ASSERT_EQ(probe.downs.size(), 1u);
  EXPECT_EQ(probe.downs[0].first, 0u);  // neighbor index of node 1 at node 0
  // Detection needs at least suspect_after rounds of silence, and the run
  // must then stop instead of spinning to the cap.
  EXPECT_GE(out.stats.rounds, std::uint64_t{kDefaultSuspectAfter});
  EXPECT_LT(out.stats.rounds, 5000u);
}

TEST(Detector, DisabledDetectorStallsToRoundLimit) {
  // suspect_after = 0 restores the pre-detector behavior: a crash-stop
  // neighbor stalls the synchronizer forever.
  const Graph g = gen::path(2);
  FaultPlan plan;
  plan.crashes.push_back({1, 5});
  EngineConfig cfg;
  cfg.faults = plan;
  cfg.max_rounds = 2000;
  ReliableConfig rc;
  rc.suspect_after = 0;
  apply_reliable(cfg, rc);
  Engine e(g, cfg);
  e.init([](NodeId) { return std::make_unique<DownProbe>(); });
  const Outcome out = e.run_bounded();
  EXPECT_EQ(out.status, RunStatus::kRoundLimit);
  EXPECT_TRUE(e.process_as<DownProbe>(0).downs.empty());
}

TEST(Detector, RejectsUnsafeTimeouts) {
  auto make = [](ReliableConfig rc) {
    return ReliableAdapter(std::make_unique<DownProbe>(), rc);
  };
  ReliableConfig no_beat;
  no_beat.heartbeat_every = 0;
  EXPECT_THROW(make(no_beat), std::invalid_argument);
  ReliableConfig tight;
  tight.heartbeat_every = 8;
  tight.suspect_after = 9;  // inside the heartbeat round trip
  EXPECT_THROW(make(tight), std::invalid_argument);
}

TEST(Detector, MinimumLegalTimeoutNeverFalselySuspectsDelayFree) {
  // Boundary pin for the no-false-positive guarantee (delay-free wires).
  // The detector declares an edge dead once now - last_heard >= suspect_after
  // (reliable.cc), and a live neighbor's worst silence gap is
  // heartbeat_every + 2: a beat leaves at t, is answered on arrival, and the
  // answer lands at t + 2. The validation floor suspect_after =
  // heartbeat_every + 3 is therefore exactly safe — one less is rejected by
  // the constructor (Detector.RejectsUnsafeTimeouts).
  for (const Graph& g : test_families()) {
    EngineConfig cfg;
    cfg.max_rounds = 500000;
    ReliableConfig rc;
    rc.heartbeat_every = 4;
    rc.suspect_after = rc.heartbeat_every + 3;  // minimum the validation admits
    apply_reliable(cfg, rc);
    Engine e(g, cfg);
    e.init([](NodeId v) { return std::make_unique<NaiveFlood>(v); });
    const Outcome out = e.run_bounded();
    ASSERT_TRUE(out.ok()) << g.summary() << ": " << out.message;
    EXPECT_EQ(out.stats.neighbors_suspected, 0u) << g.summary();
    EXPECT_EQ(flood_distances(e), seq::bfs(g, 0).dist) << g.summary();
  }
}

TEST(Detector, MinimumSafeTimeoutUnderMaxDelayNeverFalselySuspects) {
  // Same boundary under the worst configured delays: with every message
  // delayed (delay_prob = 1, up to d extra rounds) the documented silence
  // bound grows to heartbeat_every + 2 + 2*d (beat and answer each delayed
  // d). suspect_after exactly one above that bound must never produce a
  // false NeighborDown, and the wrapped protocol must stay oracle-exact.
  for (const Graph& g : test_families()) {
    FaultPlan plan;
    plan.seed = 7;
    plan.delay_prob = 1.0;
    plan.max_extra_delay = 3;
    EngineConfig cfg;
    cfg.faults = plan;
    cfg.max_rounds = 500000;
    ReliableConfig rc;
    rc.heartbeat_every = 4;
    rc.suspect_after = rc.heartbeat_every + 3 + 2 * plan.max_extra_delay;
    apply_reliable(cfg, rc);
    Engine e(g, cfg);
    e.init([](NodeId v) { return std::make_unique<NaiveFlood>(v); });
    const Outcome out = e.run_bounded();
    ASSERT_TRUE(out.ok()) << g.summary() << ": " << out.message;
    EXPECT_EQ(out.stats.neighbors_suspected, 0u) << g.summary();
    EXPECT_EQ(flood_distances(e), seq::bfs(g, 0).dist) << g.summary();
  }
}

// ---------------------------------------------------------------------------
// Crash survival: degraded-mode termination with certified outputs

Graph surviving_subgraph(const Graph& g,
                         const std::vector<std::uint8_t>& survived) {
  std::vector<Edge> edges;
  for (const Edge& e : g.edges()) {
    if (survived[e.u] != 0 && survived[e.v] != 0) edges.push_back(e);
  }
  return Graph(g.num_nodes(), edges);
}

// Asserts the acceptance property on a degraded harvest: the distributed
// certificate's verdict for each row equals exactness of the surviving
// entries against a sequential BFS oracle on the surviving subgraph.
void check_certificate_matches_oracle(
    const Graph& g, const std::vector<std::uint8_t>& survived,
    const std::vector<NodeId>& sources, const core::DistEntryFn& entry) {
  const Graph sub = surviving_subgraph(g, survived);
  const auto report = core::certify_rows(g, survived, sources, entry);
  for (std::size_t k = 0; k < sources.size(); ++k) {
    const NodeId s = sources[k];
    const auto oracle = seq::bfs(sub, s);
    bool exact = true;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (survived[v] == 0) continue;
      // A dead source is outside the surviving subgraph: the only certified
      // statement about it is "unreachable".
      const std::uint32_t want =
          (survived[s] == 0 && v != s) ? kInfDist : oracle.dist[v];
      if (entry(v, s) != want) {
        exact = false;
        break;
      }
    }
    EXPECT_EQ(report.certified[k] != 0, exact)
        << g.summary() << " row " << s << ": certificate and oracle disagree";
  }
}

TEST(CrashSurvival, WrappedPebbleApspTerminatesDegraded) {
  for (const Graph& g : test_families()) {
    const NodeId n = g.num_nodes();

    // Calibrate the crash round off the fault-free wrapped run.
    core::ApspOptions base;
    base.engine.max_rounds = 500000;
    apply_reliable(base.engine);
    const auto clean = core::run_pebble_apsp(g, base);
    ASSERT_EQ(clean.status, RunStatus::kCompleted) << g.summary();
    ASSERT_TRUE(clean.aggregates_valid);
    const std::uint64_t mid = clean.stats.rounds / 2;

    const std::vector<std::vector<NodeCrash>> scenarios = {
        {{0, mid}},      // the leader (pebble owner / aggregation root)
        {{n / 2, mid}},  // an interior node
        {{n - 1, mid}, {n / 2, mid + 3}, {1, mid + 7}},  // three crashes
    };
    for (const auto& crashes : scenarios) {
      core::ApspOptions opt;
      opt.engine.max_rounds = 500000;
      opt.engine.faults = FaultPlan{};
      opt.engine.faults->crashes = crashes;
      apply_reliable(opt.engine);
      const auto r = core::run_pebble_apsp(g, opt);

      // Survivors terminate before the round cap, degraded, with honest
      // accounting — never a silent stall.
      EXPECT_EQ(r.status, RunStatus::kDegraded) << g.summary();
      EXPECT_GT(r.stats.nodes_crashed, 0u);
      EXPECT_GT(r.stats.neighbors_suspected, 0u) << g.summary();
      EXPECT_FALSE(r.aggregates_valid);
      EXPECT_FALSE(r.degraded_nodes.empty()) << g.summary();
      for (const NodeCrash& c : crashes) EXPECT_EQ(r.survived[c.v], 0u);

      // Coverage accounting is a faithful recount of the harvested table.
      std::vector<NodeId> sources(n);
      for (NodeId s = 0; s < n; ++s) sources[s] = s;
      const auto recount = core::classify_coverage(
          r.survived, sources,
          [&](NodeId v, NodeId s) { return r.dist.at(v, s); });
      EXPECT_EQ(recount, r.coverage) << g.summary();

      // The certificate agrees with the sequential oracle row by row.
      check_certificate_matches_oracle(
          g, r.survived, sources,
          [&](NodeId v, NodeId s) { return r.dist.at(v, s); });
    }
  }
}

TEST(CrashSurvival, WrappedSspSurvivesCrashedSource) {
  for (const Graph& g : test_families()) {
    const NodeId n = g.num_nodes();
    const std::vector<NodeId> sources = {0, n / 2, n - 1};

    core::SspOptions base;
    base.engine.max_rounds = 500000;
    apply_reliable(base.engine);
    const auto clean = core::run_ssp(g, sources, base);
    ASSERT_EQ(clean.status, RunStatus::kCompleted) << g.summary();
    const std::uint64_t mid = clean.stats.rounds / 2;

    // Crash one of the BFS sources mid-run.
    core::SspOptions opt;
    opt.engine.max_rounds = 500000;
    opt.engine.faults = FaultPlan{};
    opt.engine.faults->crashes.push_back({n / 2, mid});
    apply_reliable(opt.engine);
    const auto r = core::run_ssp(g, sources, opt);

    EXPECT_EQ(r.status, RunStatus::kDegraded) << g.summary();
    EXPECT_EQ(r.survived[n / 2], 0u);
    ASSERT_EQ(r.coverage.size(), r.sources.size());

    const auto recount = core::classify_coverage(
        r.survived, r.sources,
        [&](NodeId v, NodeId s) { return r.delta[v][s]; });
    EXPECT_EQ(recount, r.coverage) << g.summary();

    check_certificate_matches_oracle(
        g, r.survived, r.sources,
        [&](NodeId v, NodeId s) { return r.delta[v][s]; });
  }
}

TEST(CrashSurvival, DelayOnlyWrappedPebbleStaysExact) {
  // The other half of the acceptance criterion: a plan that only delays
  // (no loss, no crashes) must complete oracle-exact with zero verdicts.
  const Graph g = gen::grid(3, 4);
  core::ApspOptions opt;
  FaultPlan plan;
  plan.seed = 3;
  plan.delay_prob = 0.4;
  plan.max_extra_delay = 16;
  opt.engine.faults = plan;
  opt.engine.max_rounds = 500000;
  apply_reliable(opt.engine);
  const auto r = core::run_pebble_apsp(g, opt);
  EXPECT_EQ(r.status, RunStatus::kCompleted);
  EXPECT_EQ(r.stats.neighbors_suspected, 0u);
  EXPECT_TRUE(r.degraded_nodes.empty());
  EXPECT_TRUE(r.dist == seq::apsp(g));
  for (const core::RowCoverage c : r.coverage) {
    EXPECT_EQ(c, core::RowCoverage::kComplete);
  }
}

// ---------------------------------------------------------------------------
// Duplicate schedule entries (regression): the injector must honor the
// EARLIEST round for a node or link listed twice — a crash/failure cannot be
// postponed by a later duplicate entry, in either listing order.

TEST(FaultPlan, DuplicateCrashEntriesKeepEarliestRound) {
  const Graph g = gen::path(3);
  const std::vector<std::vector<NodeCrash>> orders = {
      {{2, 1}, {2, 5}},  // early entry first
      {{2, 5}, {2, 1}},  // early entry last
  };
  for (const auto& crashes : orders) {
    FaultPlan plan;
    plan.crashes = crashes;
    const FaultInjector inj(g, plan);
    EXPECT_EQ(inj.crash_round(2), 1u);
    EXPECT_FALSE(inj.crashed(2, 0));
    EXPECT_TRUE(inj.crashed(2, 1));
  }
}

TEST(FaultPlan, DuplicateLinkFailuresKeepEarliestRound) {
  const Graph g = gen::path(2);  // directed edges: 0 = 0->1, 1 = 1->0
  const std::vector<std::vector<LinkFailure>> orders = {
      {{0, 1, 2}, {1, 0, 7}},  // same undirected link, later duplicate
      {{0, 1, 7}, {1, 0, 2}},  // reversed order and orientation
  };
  for (const auto& failures : orders) {
    FaultPlan plan;
    plan.link_failures = failures;
    const FaultInjector inj(g, plan);
    for (std::size_t e : {std::size_t{0}, std::size_t{1}}) {
      EXPECT_FALSE(inj.link_down(e, 1));
      EXPECT_TRUE(inj.link_down(e, 2));
    }
  }
}

// ---------------------------------------------------------------------------
// Payload corruption and transient stalls

TEST(FaultPlan, RejectsBadCorruptionAndStalls) {
  const Graph g = gen::path(3);
  {
    FaultPlan plan;
    plan.corrupt_prob = 1.5;
    EXPECT_THROW(FaultInjector(g, plan), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.edge_corrupt_overrides.push_back({0, 2, 0.5});  // not an edge
    EXPECT_THROW(FaultInjector(g, plan), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.stalls.push_back({7, 0, 1});  // no node 7
    EXPECT_THROW(FaultInjector(g, plan), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.stalls.push_back({1, 3, 0});  // empty window
    EXPECT_THROW(FaultInjector(g, plan), std::invalid_argument);
  }
}

TEST(Faults, CertainCorruptionFlipsExactlyOneWireBit) {
  const Graph g = gen::path(2);
  FaultPlan plan;
  plan.corrupt_prob = 1.0;
  Engine e = make_wire(g, plan);
  e.init([](NodeId v) { return std::make_unique<OneShot>(v); });
  const RunStats s = e.run();
  EXPECT_EQ(s.messages_corrupted, 1u);
  const auto& p1 = e.process_as<OneShot>(1);
  ASSERT_EQ(p1.received_.size(), 1u);
  const Message got = p1.received_[0];
  const Message sent = Message::make(1, 42);
  EXPECT_EQ(got.num_fields, sent.num_fields);  // the width never changes
  int flipped = std::popcount(
      static_cast<std::uint32_t>(got.kind ^ sent.kind));
  for (int i = 0; i < sent.num_fields; ++i) {
    flipped += std::popcount(got.f[static_cast<std::size_t>(i)] ^
                             sent.f[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(flipped, 1);
}

TEST(Faults, ZeroProbCorruptionLeavesFaultStreamsIdentical) {
  // Compatibility guarantee behind the corruption extension: a plan that
  // CANNOT corrupt (corrupt_prob = 0, even with explicit zero overrides)
  // draws bit-identical fates to the same plan before the field existed,
  // because zero-probability draws consume no RNG state.
  const Graph g = gen::random_connected(24, 20, 9);
  FaultPlan base;
  base.seed = 1234;
  base.drop_prob = 0.2;
  base.duplicate_prob = 0.1;
  base.delay_prob = 0.1;
  base.max_extra_delay = 4;
  FaultPlan with_zero = base;
  with_zero.corrupt_prob = 0.0;
  with_zero.edge_corrupt_overrides.push_back({g.edges()[0].u,
                                              g.edges()[0].v, 0.0});
  auto run_once = [&](const FaultPlan& plan) {
    EngineConfig cfg;
    cfg.faults = plan;
    Engine e(g, cfg);
    e.init([](NodeId v) { return std::make_unique<NaiveFlood>(v); });
    const RunStats s = e.run();
    return std::make_pair(s, flood_distances(e));
  };
  const auto [s1, d1] = run_once(base);
  const auto [s2, d2] = run_once(with_zero);
  EXPECT_EQ(s1.rounds, s2.rounds);
  EXPECT_EQ(s1.messages, s2.messages);
  EXPECT_EQ(s1.messages_dropped, s2.messages_dropped);
  EXPECT_EQ(s1.messages_delayed, s2.messages_delayed);
  EXPECT_EQ(s1.messages_duplicated, s2.messages_duplicated);
  EXPECT_EQ(s2.messages_corrupted, 0u);
  EXPECT_EQ(d1, d2);
}

TEST(Faults, CorruptionIsReproducible) {
  const Graph g = gen::random_connected(24, 20, 9);
  FaultPlan plan;
  plan.seed = 77;
  plan.drop_prob = 0.1;
  plan.corrupt_prob = 0.4;
  auto run_once = [&] {
    EngineConfig cfg;
    cfg.faults = plan;
    Engine e(g, cfg);
    e.init([](NodeId v) { return std::make_unique<NaiveFlood>(v); });
    const RunStats s = e.run();
    return std::make_pair(s, flood_distances(e));
  };
  const auto [s1, d1] = run_once();
  const auto [s2, d2] = run_once();
  EXPECT_GT(s1.messages_corrupted, 0u);
  EXPECT_EQ(s1.messages_corrupted, s2.messages_corrupted);
  EXPECT_EQ(s1.messages_dropped, s2.messages_dropped);
  EXPECT_EQ(d1, d2);
}

TEST(Faults, StallSilencesNodeTransiently) {
  const Graph g = gen::path(3);
  class Beacon final : public Process {
   public:
    void on_round(RoundCtx& ctx) override {
      rounds_run_ += 1;
      received_ += ctx.inbox().size();
      if (ctx.round() < 6) ctx.send_all(Message::make(1, 7));
    }
    bool done() const override { return true; }
    std::uint64_t rounds_run_ = 0;
    std::size_t received_ = 0;
  };
  FaultPlan plan;
  plan.stalls.push_back({2, 2, 2});  // rounds 2 and 3
  EngineConfig cfg;
  cfg.faults = plan;
  Engine e(g, cfg);
  e.init([](NodeId) { return std::make_unique<Beacon>(); });
  const RunStats s = e.run_rounds(8);
  EXPECT_EQ(s.node_stall_rounds, 2u);
  EXPECT_EQ(s.nodes_crashed, 0u);
  // The stalled node skipped exactly rounds 2 and 3 and then resumed.
  EXPECT_EQ(e.process_as<Beacon>(2).rounds_run_, 6u);
  // Its inbox for the stalled rounds (node 1's round-1 and round-2 sends)
  // was discarded as drops; deliveries before and after were read normally.
  EXPECT_EQ(s.messages_dropped, 2u);
  EXPECT_EQ(e.process_as<Beacon>(2).received_, 4u);
  // The neighbor missed the stalled node's rounds 2-3 sends but nothing else
  // (node 2 beacons in rounds 0, 1, 4, 5), plus node 0's six sends.
  EXPECT_EQ(e.process_as<Beacon>(1).received_, 4u + 6u);
}

TEST(Faults, OverlappingStallsUnion) {
  const Graph g = gen::path(2);
  FaultPlan plan;
  plan.stalls.push_back({1, 2, 2});  // [2, 4)
  plan.stalls.push_back({1, 3, 3});  // [3, 6)
  const FaultInjector inj(g, plan);
  EXPECT_FALSE(inj.stalled(1, 1));
  for (std::uint64_t r = 2; r < 6; ++r) EXPECT_TRUE(inj.stalled(1, r)) << r;
  EXPECT_FALSE(inj.stalled(1, 6));
  EXPECT_FALSE(inj.stalled(0, 3));
}

TEST(Reliable, WrappedPebbleApspExactUnderCorruption) {
  // The headline integrity guarantee: with every frame checksummed, payload
  // corruption (on top of loss) is detected, discarded and recovered by the
  // ARQ, so wrapped runs remain oracle-exact.
  for (const Graph& g : test_families()) {
    const DistanceMatrix oracle = seq::apsp(g);
    core::ApspOptions opt;
    opt.engine.faults = lossy_plan(0.1, 2024);
    opt.engine.faults->corrupt_prob = 0.3;
    opt.engine.max_rounds = 500000;
    apply_reliable(opt.engine);
    const auto r = core::run_pebble_apsp(g, opt);
    EXPECT_TRUE(r.dist == oracle) << g.summary();
    EXPECT_GT(r.stats.messages_corrupted, 0u) << g.summary();
  }
}

TEST(Reliable, CorruptFramesAreCountedAndDiscarded) {
  const Graph g = gen::grid(3, 4);
  FaultPlan plan;
  plan.seed = 9;
  plan.corrupt_prob = 0.25;
  EngineConfig cfg;
  cfg.faults = plan;
  cfg.max_rounds = 500000;
  apply_reliable(cfg);
  Engine e(g, cfg);
  e.init([](NodeId v) { return std::make_unique<NaiveFlood>(v); });
  const Outcome out = e.run_bounded();
  ASSERT_TRUE(out.ok()) << out.message;
  EXPECT_EQ(flood_distances(e), seq::bfs(g, 0).dist);
  // Every corrupted frame the engine injected was caught by some adapter's
  // checksum — none reached an inner process.
  std::uint64_t caught = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    caught += dynamic_cast<ReliableAdapter&>(e.process(v))
                  .stats().corrupt_frames_dropped;
  }
  EXPECT_GT(out.stats.messages_corrupted, 0u);
  EXPECT_EQ(caught, out.stats.messages_corrupted);
  // No corruption-induced false crash verdicts: corrupt arrivals still count
  // as liveness evidence.
  EXPECT_EQ(out.stats.neighbors_suspected, 0u);
}

TEST(FaultPlan, StallWindowsTruncateAtTheCrashRound) {
  const Graph g = gen::path(3);
  FaultPlan plan;
  plan.crashes = {{1, 5}};
  plan.stalls = {{1, 3, 10}};  // [3, 13) overlaps the crash at round 5
  const FaultInjector inj(g, plan);
  EXPECT_TRUE(inj.stalled(1, 3));
  EXPECT_TRUE(inj.stalled(1, 4));
  // Canonicalized: from the crash round on the node is dead, not stalled.
  EXPECT_FALSE(inj.stalled(1, 5));
  EXPECT_FALSE(inj.stalled(1, 12));
  EXPECT_TRUE(inj.crashed(1, 5));
}

TEST(FaultPlan, StallWindowsStartingAtOrAfterTheCrashAreDropped) {
  const Graph g = gen::path(3);
  for (const std::uint64_t start : {std::uint64_t{5}, std::uint64_t{9}}) {
    FaultPlan plan;
    plan.crashes = {{1, 5}};
    plan.stalls = {{1, start, 4}};
    const FaultInjector inj(g, plan);
    for (std::uint64_t r = start; r < start + 4; ++r) {
      EXPECT_FALSE(inj.stalled(1, r)) << "start " << start << " round " << r;
    }
  }
  // Duplicate crash entries resolve earliest-wins *before* the truncation,
  // regardless of order.
  FaultPlan plan;
  plan.crashes = {{1, 9}, {1, 4}};
  plan.stalls = {{1, 2, 10}};
  const FaultInjector inj(g, plan);
  EXPECT_TRUE(inj.stalled(1, 3));
  EXPECT_FALSE(inj.stalled(1, 4));
}

TEST(Reliable, HarvestSeesThroughWrapper) {
  const Graph g = gen::path(4);
  EngineConfig cfg;
  apply_reliable(cfg);
  Engine e(g, cfg);
  e.init([](NodeId v) { return std::make_unique<NaiveFlood>(v); });
  e.run();
  // process() returns the adapter; process_as<> resolves the inner process.
  EXPECT_NE(dynamic_cast<ReliableAdapter*>(&e.process(3)), nullptr);
  EXPECT_EQ(e.process_as<NaiveFlood>(3).dist(), 3u);
  auto& adapter = dynamic_cast<ReliableAdapter&>(e.process(3));
  EXPECT_GT(adapter.stats().virtual_rounds, 0u);
  EXPECT_GT(adapter.stats().frames_sent, 0u);
}

}  // namespace
}  // namespace dapsp::congest
