// A deliberately naive serial reference model of the CONGEST engine.
//
// tests/test_engine_equivalence.cc runs the flat-memory production engine
// (src/congest/engine.cc, DESIGN.md §16) differentially against this model
// over randomized graphs, fault plans and thread counts. The two
// implementations share only the public contracts they both must honor —
// Process/RoundCtx, FaultPlan/FaultInjector (the per-(node, round) decision
// streams ARE the specification of fault determinism) and the documented
// wire-bit layout — and none of the production engine's machinery: no
// arenas, no CSR mirror table, no sharding, no double-buffered frames. Every
// container here is the textbook per-node vector-of-vectors the flat engine
// replaced, so a bug in the flat layout (stale arena span, mis-scattered
// segment, wrong mirror index) shows up as a divergence, not as a shared
// blind spot.
//
// The model reproduces, exactly:
//   * delivery order (ascending sender, then send order; delayed copies
//     after all normal deliveries of their round, in queue order);
//   * bandwidth/field-width accounting, including the error strings and the
//     smallest-node / accounting-supersedes-phase-A error selection;
//   * every RunStats counter, fault fates drawn from the same streams, and
//     crash/stall inbox-drop accounting;
//   * the send-observer stream (round-major, sender-major, send order).
//
// Not reproduced (compare via the production engine's own thread-count
// determinism instead): TraceLog contents, EngineMetrics, round_activity.
#pragma once

#include <algorithm>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "congest/engine.h"
#include "congest/faults.h"
#include "graph/graph.h"
#include "util/bits.h"
#include "util/rng.h"

namespace dapsp::testing {

class ReferenceEngine {
 public:
  ReferenceEngine(const Graph& g, congest::EngineConfig config)
      : graph_(&g), config_(std::move(config)) {
    const NodeId n = g.num_nodes();
    if (n == 0) throw std::invalid_argument("ReferenceEngine: empty graph");
    value_bits_ = static_cast<std::uint32_t>(
        bits_for(std::max<std::uint64_t>(2 * std::uint64_t{n}, 255)));
    bandwidth_bits_ = static_cast<std::uint32_t>(congest::kTagBits) +
                      config_.bandwidth_ids * value_bits_;
    max_rounds_ = config_.max_rounds != 0 ? config_.max_rounds
                                          : 64 * std::uint64_t{n} + 1024;
    edge_offsets_.resize(n + 1, 0);
    for (NodeId v = 0; v < n; ++v) {
      edge_offsets_[v + 1] = edge_offsets_[v] + g.degree(v);
    }
    if (config_.faults) {
      faults_ = std::make_unique<congest::FaultInjector>(g, *config_.faults);
    }
  }

  void init(
      const std::function<std::unique_ptr<congest::Process>(NodeId)>& factory) {
    const NodeId n = graph_->num_nodes();
    processes_.clear();
    for (NodeId v = 0; v < n; ++v) {
      auto p = factory(v);
      if (config_.process_wrapper) p = config_.process_wrapper(v, std::move(p));
      processes_.push_back(std::move(p));
    }
    round_ = 0;
    stats_ = congest::RunStats{};
    stats_.bandwidth_bits = bandwidth_bits_;
    inboxes_.assign(n, {});
    pending_messages_ = 0;
    delayed_.clear();
    delayed_pending_ = 0;
    crashed_.assign(n, 0);
    apply_crashes();
  }

  congest::RunStats run() {
    while (!quiescent()) step();
    return stats_;
  }

  congest::Outcome run_bounded() {
    congest::Outcome out;
    try {
      out.stats = run();
      if (out.stats.nodes_crashed > 0 || out.stats.neighbors_suspected > 0) {
        out.status = congest::RunStatus::kDegraded;
        out.message = "terminated degraded: crashed=" +
                      std::to_string(out.stats.nodes_crashed) +
                      " neighbors_suspected=" +
                      std::to_string(out.stats.neighbors_suspected);
      } else {
        out.status = congest::RunStatus::kCompleted;
      }
    } catch (const congest::RoundLimitError& e) {
      out.status = congest::RunStatus::kRoundLimit;
      out.stats = stats_;
      out.message = e.what();
    } catch (const congest::CongestionError& e) {
      out.status = congest::RunStatus::kCongestion;
      out.stats = stats_;
      out.message = e.what();
    }
    return out;
  }

  congest::Process& process(NodeId v) { return *processes_[v]; }
  bool crashed(NodeId v) const { return crashed_[v] != 0; }
  std::uint64_t current_round() const { return round_; }

 private:
  struct Pending {
    std::uint32_t neighbor_index;
    congest::Message msg;
  };

  class Ctx final : public congest::RoundCtx {
   public:
    Ctx(ReferenceEngine& eng, NodeId id) : RoundCtx(id), eng_(eng) {}
    NodeId n() const noexcept override { return eng_.graph_->num_nodes(); }
    std::uint64_t round() const noexcept override { return eng_.round_; }
    std::uint32_t degree() const noexcept override {
      return eng_.graph_->degree(id_);
    }
    NodeId neighbor(std::uint32_t index) const override {
      return eng_.graph_->neighbors(id_)[index];
    }
    std::span<const congest::Received> inbox() const noexcept override {
      return eng_.inboxes_[id_];
    }
    void send(std::uint32_t index, const congest::Message& m) override {
      if (index >= degree()) {
        throw std::out_of_range("send: bad neighbor index");
      }
      eng_.outbox_.push_back(Pending{index, m});
    }
    void note_neighbor_suspected(std::uint32_t) override {
      ++eng_.stats_.neighbors_suspected;
    }

   private:
    ReferenceEngine& eng_;
  };
  friend class Ctx;

  // The documented wire-bit layout (congest/faults.h FaultDecision): bits
  // 0..kTagBits-1 are the kind, then num_fields fields of value_bits each.
  static congest::Message corrupt(congest::Message m, std::uint32_t bit,
                                  std::uint32_t value_bits) {
    if (bit < static_cast<std::uint32_t>(congest::kTagBits)) {
      m.kind = static_cast<std::uint8_t>(m.kind ^ (1u << bit));
    } else {
      const std::uint32_t i = (bit - congest::kTagBits) / value_bits;
      const std::uint32_t j = (bit - congest::kTagBits) % value_bits;
      m.f[i] ^= (1u << j);
    }
    return m;
  }

  void step() {
    if (round_ >= max_rounds_) {
      throw congest::RoundLimitError("round limit exceeded (" +
                                     std::to_string(max_rounds_) +
                                     " rounds); protocol livelock?");
    }
    const NodeId n = graph_->num_nodes();
    std::vector<std::vector<congest::Received>> next(n);
    bool failed = false;
    NodeId failed_node = 0;
    std::exception_ptr error;
    // Per-(directed edge, round) loads, rebuilt from scratch each round.
    std::map<std::size_t, std::pair<std::uint64_t, std::uint64_t>> edge_load;

    for (NodeId v = 0; v < n; ++v) {
      if (crashed_[v] != 0) continue;
      if (faults_ && faults_->stalled(v, round_)) {
        stats_.messages_dropped += inboxes_[v].size();
        ++stats_.node_stall_rounds;
        continue;
      }
      outbox_.clear();
      Ctx ctx(*this, v);
      try {
        processes_[v]->on_round(ctx);
      } catch (...) {
        if (!failed) {
          failed = true;
          failed_node = v;
          error = std::current_exception();
        }
      }
      // Accounting: an error reported here supersedes a phase-A failure of
      // the same node, never an earlier node's.
      const auto fail = [&](std::string text) {
        if (failed && failed_node != v) return;
        failed = true;
        failed_node = v;
        error = std::make_exception_ptr(
            congest::CongestionError(std::move(text)));
      };
      const auto nbrs = graph_->neighbors(v);
      Rng stream = faults_ ? faults_->stream(v, round_) : Rng(0);
      std::uint64_t node_bits = 0;
      for (const Pending& ps : outbox_) {
        const congest::Message& m = ps.msg;
        bool bad_field = false;
        for (int i = 0; i < m.num_fields; ++i) {
          if (std::uint64_t{m.f[static_cast<std::size_t>(i)]} >> value_bits_) {
            fail("message field exceeds value width: " + m.debug_string());
            bad_field = true;
            break;
          }
        }
        if (bad_field) break;
        const NodeId to = nbrs[ps.neighbor_index];
        const std::size_t edge = edge_offsets_[v] + ps.neighbor_index;
        const std::uint32_t cost = m.bit_cost(value_bits_);
        auto& [bits, msgs] = edge_load[edge];
        bits += cost;
        msgs += 1;
        if (config_.enforce_bandwidth && bits > bandwidth_bits_) {
          fail("bandwidth exceeded on edge " + std::to_string(v) + "->" +
               std::to_string(to) + " in round " + std::to_string(round_) +
               ": " + std::to_string(bits) + " > B=" +
               std::to_string(bandwidth_bits_) + " bits (last: " +
               m.debug_string() + ")");
          break;
        }
        stats_.max_edge_bits = std::max(stats_.max_edge_bits, bits);
        stats_.max_edge_messages = std::max(stats_.max_edge_messages, msgs);
        node_bits += cost;
        stats_.max_node_bits = std::max(stats_.max_node_bits, node_bits);
        stats_.messages += 1;
        stats_.total_bits += cost;
        if (config_.send_observer) {
          config_.send_observer(congest::SendEvent{v, to, round_, m});
        }
        const congest::Received rec{*graph_->neighbor_index(to, v), m};
        if (faults_) {
          if (faults_->link_down(edge, round_)) {
            ++stats_.messages_dropped;
            continue;
          }
          const congest::FaultDecision d = faults_->decide(stream, edge, cost);
          if (d.dropped) {
            ++stats_.messages_dropped;
            continue;
          }
          if (d.copies > 1) ++stats_.messages_duplicated;
          for (std::uint32_t c = 0; c < d.copies; ++c) {
            if (d.extra_delay[c] != 0) ++stats_.messages_delayed;
            congest::Received copy = rec;
            if (d.corrupt_bit[c] != congest::kNoCorruption) {
              copy.msg = corrupt(copy.msg, d.corrupt_bit[c], value_bits_);
              ++stats_.messages_corrupted;
            }
            if (d.extra_delay[c] == 0) {
              next[to].push_back(copy);
            } else {
              delayed_[round_ + 1 + d.extra_delay[c]].push_back({to, copy});
              ++delayed_pending_;
            }
          }
          continue;
        }
        next[to].push_back(rec);
      }
    }
    // The failing round's deliveries are never applied (the production
    // engine throws before its deliver phase), but its accounting stands.
    if (failed) std::rethrow_exception(error);

    inboxes_ = std::move(next);
    pending_messages_ = 0;
    for (NodeId v = 0; v < n; ++v) pending_messages_ += inboxes_[v].size();
    ++round_;
    stats_.rounds = round_;
    if (faults_) {
      const auto due = delayed_.find(round_);
      if (due != delayed_.end()) {
        for (auto& [to, rec] : due->second) {
          --delayed_pending_;
          inboxes_[to].push_back(rec);
          ++pending_messages_;
        }
        delayed_.erase(due);
      }
      apply_crashes();
    }
  }

  void apply_crashes() {
    if (!faults_) return;
    const NodeId n = graph_->num_nodes();
    for (NodeId v = 0; v < n; ++v) {
      if (crashed_[v] == 0 && faults_->crashed(v, round_)) {
        crashed_[v] = 1;
        ++stats_.nodes_crashed;
      }
      if (crashed_[v] != 0 && !inboxes_[v].empty()) {
        stats_.messages_dropped += inboxes_[v].size();
        pending_messages_ -= inboxes_[v].size();
        inboxes_[v].clear();
      }
    }
  }

  bool quiescent() const {
    if (pending_messages_ > 0 || delayed_pending_ > 0) return false;
    const NodeId n = graph_->num_nodes();
    for (NodeId v = 0; v < n; ++v) {
      if (crashed_[v] == 0 && !processes_[v]->done()) return false;
    }
    return true;
  }

  const Graph* graph_;
  congest::EngineConfig config_;
  std::uint32_t value_bits_ = 0;
  std::uint32_t bandwidth_bits_ = 0;
  std::uint64_t max_rounds_ = 0;
  std::vector<std::size_t> edge_offsets_;
  std::unique_ptr<congest::FaultInjector> faults_;

  std::vector<std::unique_ptr<congest::Process>> processes_;
  std::vector<std::vector<congest::Received>> inboxes_;
  std::vector<Pending> outbox_;  // the node currently executing
  std::uint64_t pending_messages_ = 0;
  // Future deliveries keyed by absolute delivery round (insertion order
  // within a round matches the production engine's ring-slot push order).
  std::map<std::uint64_t, std::vector<std::pair<NodeId, congest::Received>>>
      delayed_;
  std::uint64_t delayed_pending_ = 0;
  std::vector<std::uint8_t> crashed_;
  std::uint64_t round_ = 0;
  congest::RunStats stats_;
};

}  // namespace dapsp::testing
