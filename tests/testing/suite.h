// Shared test fixtures: a named suite of connected graphs spanning the
// shapes that matter for the paper (paths: huge D; cliques: D=1; expanders;
// trees: infinite girth; cycles: girth = n; gadgets: adversarial).
#pragma once

#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"

namespace dapsp::testing {

struct NamedGraph {
  std::string name;
  Graph graph;
};

// Small connected graphs for exhaustive oracle comparison (n <= ~80).
inline std::vector<NamedGraph> small_suite() {
  using namespace dapsp::gen;
  std::vector<NamedGraph> s;
  s.push_back({"single", path(1)});
  s.push_back({"edge", path(2)});
  s.push_back({"path16", path(16)});
  s.push_back({"path61", path(61)});
  s.push_back({"cycle3", cycle(3)});
  s.push_back({"cycle17", cycle(17)});
  s.push_back({"cycle32", cycle(32)});
  s.push_back({"complete8", complete(8)});
  s.push_back({"complete25", complete(25)});
  s.push_back({"star20", star(20)});
  s.push_back({"bipartite5x7", complete_bipartite(5, 7)});
  s.push_back({"btree31", balanced_tree(31, 2)});
  s.push_back({"ternary40", balanced_tree(40, 3)});
  s.push_back({"grid5x8", grid(5, 8)});
  s.push_back({"torus4x5", torus(4, 5)});
  s.push_back({"hypercube4", hypercube(4)});
  s.push_back({"petersen", petersen()});
  s.push_back({"barbell6", barbell(6, 3)});
  s.push_back({"lollipop8", lollipop(8, 9)});
  s.push_back({"caterpillar", caterpillar(8, 3)});
  s.push_back({"cliquepath4x5", path_of_cliques(4, 5)});
  s.push_back({"chords40", cycle_with_chords(40, 12, 7)});
  s.push_back({"treecycle", tree_with_cycle(48, 7, 3)});
  s.push_back({"dense_d2", dense_diameter2(12)});
  s.push_back({"diam4", diameter4(6)});
  s.push_back({"rand40a", random_connected(40, 30, 11)});
  s.push_back({"rand64b", random_connected(64, 64, 13)});
  s.push_back({"rand50sparse", random_connected(50, 5, 17)});
  return s;
}

// Medium graphs for scaling-sensitive tests (n up to ~300).
inline std::vector<NamedGraph> medium_suite() {
  using namespace dapsp::gen;
  std::vector<NamedGraph> s;
  s.push_back({"path200", path(200)});
  s.push_back({"cycle201", cycle(201)});
  s.push_back({"grid12x16", grid(12, 16)});
  s.push_back({"btree255", balanced_tree(255, 2)});
  s.push_back({"cliquepath10x8", path_of_cliques(10, 8)});
  s.push_back({"rand200", random_connected(200, 220, 19)});
  s.push_back({"rand300sparse", random_connected(300, 40, 23)});
  s.push_back({"hypercube8", hypercube(8)});
  return s;
}

}  // namespace dapsp::testing
