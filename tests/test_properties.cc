// Parameterized property sweeps (TEST_P): every protocol invariant checked
// across a grid of (graph family, size, seed) configurations. These are the
// "many random instances" guarantees that the targeted unit tests cannot
// cover by enumeration.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/ecc_approx.h"
#include "core/girth_approx.h"
#include "core/kdom.h"
#include "core/pebble_apsp.h"
#include "core/ssp.h"
#include "core/tree_check.h"
#include "graph/generators.h"
#include "graph/hard_instances.h"
#include "seq/apsp.h"
#include "seq/properties.h"
#include "util/bits.h"
#include "util/rng.h"

namespace dapsp::core {
namespace {

enum class Family {
  kRandomSparse,
  kRandomDense,
  kCycleChords,
  kTree,
  kCliqueChain,
  kGadget2v3,
  kShuffledGrid,
};

struct Config {
  Family family;
  NodeId size;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const Config& c) {
    const char* names[] = {"RandomSparse", "RandomDense", "CycleChords",
                           "Tree",         "CliqueChain", "Gadget2v3",
                           "ShuffledGrid"};
    return os << names[static_cast<int>(c.family)] << "_n" << c.size << "_s"
              << c.seed;
  }
};

Graph build(const Config& c) {
  switch (c.family) {
    case Family::kRandomSparse:
      return gen::random_connected(c.size, c.size / 4, c.seed);
    case Family::kRandomDense:
      return gen::random_connected(c.size, 3 * c.size, c.seed);
    case Family::kCycleChords:
      return gen::cycle_with_chords(c.size, c.size / 5, c.seed);
    case Family::kTree:
      return gen::random_connected(c.size, 0, c.seed);
    case Family::kCliqueChain:
      return gen::path_of_cliques(std::max<NodeId>(c.size / 8, 1), 8)
          .relabeled(c.seed);
    case Family::kGadget2v3:
      return hard::diameter_2_vs_3(std::max<NodeId>((c.size - 3) / 4, 2),
                                   c.seed % 2 == 0, c.seed)
          .graph;
    case Family::kShuffledGrid: {
      const auto side = static_cast<NodeId>(isqrt(c.size));
      return gen::grid(side, side).relabeled(c.seed);
    }
  }
  return gen::path(2);
}

class ProtocolProperty : public ::testing::TestWithParam<Config> {};

// Property 1: Algorithm 1 computes the exact distance matrix, its next hops
// lie on shortest paths, and its derived quantities match the oracle.
TEST_P(ProtocolProperty, PebbleApspExact) {
  const Graph g = build(GetParam());
  const ApspResult r = run_pebble_apsp(g);
  const DistanceMatrix want = seq::apsp(g);
  ASSERT_EQ(r.dist, want);
  EXPECT_EQ(r.diameter, seq::diameter(g));
  EXPECT_EQ(r.radius, seq::radius(g));
  EXPECT_EQ(r.girth, seq::girth(g));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u == v) continue;
      const NodeId nh = r.next_hop[v][u];
      ASSERT_NE(nh, kNoNextHop);
      ASSERT_EQ(want.at(nh, u) + 1, want.at(v, u));
    }
  }
}

// Property 2: Theorem 1's linear round bound and Lemma 1's congestion
// freedom hold with explicit constants.
TEST_P(ProtocolProperty, PebbleApspComplexityAndCongestion) {
  const Graph g = build(GetParam());
  ApspOptions opt;
  opt.aggregate = false;
  const ApspResult r = run_pebble_apsp(g, opt);
  EXPECT_LE(r.stats.rounds,
            3 * std::uint64_t{g.num_nodes()} + 10 * r.leader_ecc + 16);
  EXPECT_LE(r.stats.max_edge_messages, 2u);  // one flood + the pebble
  EXPECT_LE(r.stats.max_edge_bits, r.stats.bandwidth_bits);
}

// Property 3: Algorithm 2 computes exact distances to a random source set
// within its schedule, for every graph in the grid.
TEST_P(ProtocolProperty, SspExact) {
  const Graph g = build(GetParam());
  const NodeId n = g.num_nodes();
  std::vector<NodeId> sources;
  Rng rng(GetParam().seed ^ 0xabcdef);
  for (NodeId v = 0; v < n; ++v) {
    if (rng.chance(0.15)) sources.push_back(v);
  }
  if (sources.empty()) sources.push_back(static_cast<NodeId>(rng.below(n)));
  const SspResult r = run_ssp(g, sources);
  const DistanceMatrix want = seq::apsp(g);
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId s : sources) {
      ASSERT_EQ(r.delta[v][s], want.at(v, s))
          << "v=" << v << " s=" << s;
    }
  }
  EXPECT_LE(r.stats.max_edge_bits, r.stats.bandwidth_bits);
}

// Property 4: Claim 1 decides tree-ness in O(D).
TEST_P(ProtocolProperty, TreeCheck) {
  const Graph g = build(GetParam());
  const TreeCheckRun r = run_tree_check(g);
  EXPECT_EQ(r.is_tree, seq::is_tree(g));
  EXPECT_LE(r.stats.rounds, 6 * std::uint64_t{seq::diameter(g)} + 16);
}

// Property 5: the k-dominating set dominates within the size bound.
TEST_P(ProtocolProperty, KdomInvariant) {
  const Graph g = build(GetParam());
  const std::uint32_t k = 1 + static_cast<std::uint32_t>(GetParam().seed % 5);
  const KdomResult r = run_kdom(g, k);
  EXPECT_TRUE(seq::is_k_dominating(g, r.dom, k));
  EXPECT_LE(r.dom.size(), g.num_nodes() / (k + 1) + 1);
}

// Property 6: Theorem 4's eccentricity estimates are sandwiched.
TEST_P(ProtocolProperty, EccApproxSandwich) {
  const Graph g = build(GetParam());
  const EccApproxResult r = run_ecc_approx(g, {.epsilon = 0.5});
  const auto ecc = seq::eccentricities(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_GE(r.ecc_estimate[v], ecc[v]);
    ASSERT_LE(r.ecc_estimate[v], ecc[v] + r.k);
  }
}

// Property 7: Theorem 5's girth estimate is within (x,1+eps).
TEST_P(ProtocolProperty, GirthApproxRatio) {
  const Graph g = build(GetParam());
  const GirthApproxResult r = run_girth_approx(g, {.epsilon = 0.5});
  const std::uint32_t truth = seq::girth(g);
  if (truth == seq::kInfGirth) {
    EXPECT_TRUE(r.was_tree);
  } else {
    EXPECT_GE(r.girth_estimate, truth);
    EXPECT_LE(r.girth_estimate, 1.5 * truth + 1e-9);
  }
}

std::vector<Config> grid() {
  std::vector<Config> cs;
  for (const Family f :
       {Family::kRandomSparse, Family::kRandomDense, Family::kCycleChords,
        Family::kTree, Family::kCliqueChain, Family::kGadget2v3,
        Family::kShuffledGrid}) {
    for (const NodeId n : {24u, 60u, 96u}) {
      for (const std::uint64_t seed : {1u, 2u, 3u}) {
        cs.push_back({f, n, seed});
      }
    }
  }
  return cs;
}

INSTANTIATE_TEST_SUITE_P(Grid, ProtocolProperty, ::testing::ValuesIn(grid()),
                         [](const ::testing::TestParamInfo<Config>& param_info) {
                           std::ostringstream os;
                           os << param_info.param;
                           return os.str();
                         });

}  // namespace
}  // namespace dapsp::core
