// Query serving tier (core/query.h) and the arithmetic/edge-case sweep that
// rode along with it:
//
//   * sat_add_dist / DistanceLabeling::combine at the kInfDist sentinel
//     boundary (the old plain addition wrapped),
//   * build_distance_labels on the k = 0 degenerate path, the Lemma 10
//     bound, and disconnected inputs (clear error instead of partial
//     labels),
//   * DQRY blob encode/classify/parse taxonomy, mmap round-trip,
//   * snapshot answers (p2p / k-nearest / eccentricity) vs the naive
//     sequential oracle and vs DapspService::query, over a seeded sweep of
//     graph x churn configurations,
//   * monotone-conservative status disclosure at every publish point,
//     including the deterministic mid-epoch (degraded) publish — a row
//     degrading between snapshot publish and query must never claim kExact,
//   * SnapshotStore swap/pin/retire-after-grace semantics, single-threaded
//     and with 1/2/8 concurrent reader threads validating mid-swap answers
//     (the TSan target), and the LabelCache.
//
// The validation invariant used throughout: an answer whose status is
// kExact or kRepaired, served from a snapshot published at service epoch e,
// must equal the sequential oracle of the post-batch graph at epoch e.
// kStale answers make no claim. Overclaiming (stale value under a fresh
// status) is the bug class this file exists to catch.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/distance_labels.h"
#include "core/query.h"
#include "core/service.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "seq/apsp.h"
#include "seq/bfs.h"
#include "util/blob.h"
#include "util/journal.h"
#include "util/rng.h"

namespace dapsp::core {
namespace {

namespace fs = std::filesystem;

DistanceMatrix oracle_table(const DynamicGraph& dg) {
  return seq::apsp(dg.snapshot());
}

// Mirrors DapspService::step's batch application (crashes of already-dead
// nodes are skipped).
void apply_batch(DynamicGraph& dg, const ChurnBatch& batch) {
  for (const GraphDelta& d : batch.deltas) dg.apply(d);
  for (const NodeId v : batch.crashes) {
    if (dg.active(v)) dg.apply({DeltaKind::kNodeLeave, v, v});
  }
}

std::vector<RowStatus> all_exact(NodeId n) {
  return std::vector<RowStatus>(n, RowStatus::kExact);
}

// A snapshot of a static graph's exact tables (no service involved).
std::vector<std::uint8_t> encode_static(const Graph& g,
                                        const DistanceLabeling* labels =
                                            nullptr) {
  const DistanceMatrix dist = seq::apsp(g);
  const std::vector<std::uint8_t> active(g.num_nodes(), 1);
  const std::vector<RowStatus> status = all_exact(g.num_nodes());
  return encode_query_snapshot_tables(dist, nullptr, active, status,
                                      /*epoch=*/0, /*sequence=*/0,
                                      /*degraded=*/false, labels);
}

// Every p2p/k-nearest/eccentricity answer of `snap` checked against
// `oracle` (the post-batch table for the snapshot's epoch) under the
// validation invariant, and — when `svc` is given — against the service's
// own answers. Returns the number of fresh (non-stale) answers checked.
std::size_t validate_snapshot(const QuerySnapshot& snap,
                              const DistanceMatrix& oracle,
                              const DapspService* svc,
                              bool expect_hops = true) {
  const NodeId n = snap.n();
  std::size_t fresh = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      const QueryAnswer a = snap.p2p(u, v);
      if (svc != nullptr) {
        const ServiceQuery q = svc->query(u, v);
        EXPECT_EQ(a.active, q.active);
        EXPECT_EQ(a.dist, q.dist);
        EXPECT_EQ(a.next_hop, q.next_hop);
        EXPECT_EQ(a.status, q.status);
      }
      if (!a.active) {
        EXPECT_TRUE(!snap.active(u) || !snap.active(v));
        continue;
      }
      if (a.status == RowStatus::kStale) continue;
      ++fresh;
      EXPECT_EQ(a.dist, oracle.at(u, v))
          << "status " << to_string(a.status) << " overclaims for (" << u
          << ", " << v << ") at epoch " << snap.epoch();
      if (u != v && a.dist != kInfDist) {
        // RowStatus certifies *distances*; on distance-clean rows the
        // stored hop can go stale under churn (a crash or removal reroutes
        // an equal-length path without perturbing any certified distance).
        // Hop path-consistency is asserted where it is guaranteed — see
        // QueryBlob.FreshServiceHopsAdvanceThePath — here only presence.
        if (expect_hops) EXPECT_NE(a.next_hop, kNoNextHop);
      }
    }
    // One k-nearest and one eccentricity probe per row, against the naive
    // scan of the oracle row.
    const KNearestAnswer kn = snap.k_nearest(u, 3);
    const EccentricityAnswer ec = snap.eccentricity(u);
    if (!snap.active(u)) {
      EXPECT_FALSE(kn.active);
      EXPECT_FALSE(ec.active);
      continue;
    }
    EXPECT_TRUE(std::is_sorted(kn.nearest.begin(), kn.nearest.end(),
                               [](const NearNeighbor& a,
                                  const NearNeighbor& b) {
                                 return a.dist != b.dist ? a.dist < b.dist
                                                         : a.node < b.node;
                               }));
    if (kn.status == RowStatus::kStale) continue;
    std::uint32_t naive_ecc = 0;
    std::uint32_t best = kInfDist;
    std::size_t finite = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (!snap.active(v)) continue;
      const std::uint32_t d = oracle.at(v, u);
      if (d == kInfDist) continue;
      naive_ecc = std::max(naive_ecc, d);
      if (v != u) {
        ++finite;
        best = std::min(best, d);
      }
    }
    EXPECT_EQ(ec.ecc, naive_ecc);
    EXPECT_EQ(kn.nearest.size(), std::min<std::size_t>(3, finite));
    if (!kn.nearest.empty()) EXPECT_EQ(kn.nearest.front().dist, best);
  }
  return fresh;
}

// ------------------------------------------------- saturating label arithmetic

TEST(SatAddDist, InfinityAbsorbsAndNearMaxClamps) {
  EXPECT_EQ(sat_add_dist(kInfDist, 0), kInfDist);
  EXPECT_EQ(sat_add_dist(0, kInfDist), kInfDist);
  EXPECT_EQ(sat_add_dist(kInfDist, kInfDist), kInfDist);
  // One below the sentinel + 1 used to wrap to 0; it must clamp instead.
  EXPECT_EQ(sat_add_dist(kInfDist - 1, 1), kInfDist);
  EXPECT_EQ(sat_add_dist(kInfDist - 1, kInfDist - 1), kInfDist);
  // Finite sums below the sentinel are preserved exactly.
  EXPECT_EQ(sat_add_dist(kInfDist - 2, 1), kInfDist - 1);
  EXPECT_EQ(sat_add_dist(3, 4), 7u);
  EXPECT_EQ(sat_add_dist(0, 0), 0u);
}

TEST(DistanceLabelCombine, SentinelBoundaryNeverWraps) {
  using C = DistanceLabeling;
  const std::uint32_t inf = kInfDist;
  // No dominator finite on both sides: the estimate is "unknown", not a
  // wrapped tiny value. (inf + 5 wrapped to 4 under plain u32 addition.)
  EXPECT_EQ(C::combine(std::vector<std::uint32_t>{inf},
                       std::vector<std::uint32_t>{5}),
            inf);
  EXPECT_EQ(C::combine(std::vector<std::uint32_t>{3, inf},
                       std::vector<std::uint32_t>{inf, 4}),
            inf);
  // Near-max finite entries clamp to the sentinel instead of beating a
  // genuine finite dominator.
  EXPECT_EQ(C::combine(std::vector<std::uint32_t>{inf - 1, 10},
                       std::vector<std::uint32_t>{inf - 1, 2}),
            12u);
  EXPECT_EQ(C::combine(std::vector<std::uint32_t>{3, 10},
                       std::vector<std::uint32_t>{4, 1}),
            7u);
  EXPECT_EQ(C::combine({}, {}), inf);
}

TEST(DistanceLabels, KZeroIsExactAndBoundHolds) {
  const Graph g = gen::random_connected(14, 9, 21);
  const DistanceMatrix oracle = seq::apsp(g);
  const DistanceLabeling lab = build_distance_labels(g, 0);
  // k = 0: one residue class, DOM = V, |DOM| <= n + 1 trivially.
  EXPECT_EQ(lab.dominators().size(), g.num_nodes());
  EXPECT_LE(lab.dominators().size(),
            std::size_t{g.num_nodes()} / 1 + 1);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(lab.estimate(u, v), oracle.at(u, v));
    }
  }
}

TEST(DistanceLabels, AdditiveSlackAndLemma10Bound) {
  const Graph g = gen::random_connected(30, 20, 7);
  const DistanceMatrix oracle = seq::apsp(g);
  for (const std::uint32_t k : {1u, 2u, 4u}) {
    const DistanceLabeling lab = build_distance_labels(g, k);
    EXPECT_LE(lab.dominators().size(),
              std::size_t{g.num_nodes()} / (k + 1) + 1);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const std::uint32_t est = lab.estimate(u, v);
        EXPECT_GE(est, oracle.at(u, v));
        EXPECT_LE(est, oracle.at(u, v) + 2 * k);
      }
    }
  }
}

TEST(DistanceLabels, DisconnectedInputThrowsInsteadOfPartialLabels) {
  // Two components: 0-1 and 2-3.
  const Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(build_distance_labels(g, 1), std::invalid_argument);
  EXPECT_THROW(build_distance_labels(g, 0), std::invalid_argument);
}

// ------------------------------------------------------------ DQRY blob format

TEST(QueryBlob, RoundTripPreservesFieldsAndAnswers) {
  const Graph g = gen::random_connected(12, 8, 5);
  const DistanceLabeling lab = build_distance_labels(g, 1);
  const std::vector<std::uint8_t> blob = encode_static(g, &lab);
  EXPECT_EQ(classify_query_blob(blob), CheckpointError::kNone);

  const QuerySnapshot snap = QuerySnapshot::from_blob(blob);
  EXPECT_EQ(snap.n(), g.num_nodes());
  EXPECT_EQ(snap.epoch(), 0u);
  EXPECT_EQ(snap.sequence(), 0u);
  EXPECT_FALSE(snap.degraded());
  EXPECT_TRUE(snap.has_labels());
  EXPECT_EQ(snap.label_k(), 1u);
  EXPECT_EQ(snap.dominators().size(), lab.dominators().size());

  const DistanceMatrix oracle = seq::apsp(g);
  validate_snapshot(snap, oracle, nullptr, /*expect_hops=*/false);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(snap.label_estimate(u, v), lab.estimate(u, v));
    }
  }
}

TEST(QueryBlob, ClassifyTaxonomy) {
  const Graph g = gen::random_connected(8, 4, 2);
  std::vector<std::uint8_t> blob = encode_static(g);
  ASSERT_EQ(classify_query_blob(blob), CheckpointError::kNone);

  EXPECT_EQ(classify_query_blob({}), CheckpointError::kTruncated);
  EXPECT_EQ(classify_query_blob(std::span(blob).first(17)),
            CheckpointError::kTruncated);
  {
    std::vector<std::uint8_t> b = blob;
    b.pop_back();
    EXPECT_EQ(classify_query_blob(b), CheckpointError::kTruncated);
    b = blob;
    b.push_back(0);  // appended bytes are damage, not slack
    EXPECT_EQ(classify_query_blob(b), CheckpointError::kTruncated);
  }
  {
    std::vector<std::uint8_t> b = blob;
    b[0] = 'X';
    EXPECT_EQ(classify_query_blob(b), CheckpointError::kBadMagic);
  }
  {
    std::vector<std::uint8_t> b = blob;
    b[7] = '2';
    EXPECT_EQ(classify_query_blob(b), CheckpointError::kVersionMismatch);
  }
  {
    std::vector<std::uint8_t> b = blob;
    b[60] ^= 0x40;  // a distance-table byte
    EXPECT_EQ(classify_query_blob(b), CheckpointError::kChecksumMismatch);
  }
  {
    // An in-blob status byte outside the enum, with the checksum repaired:
    // structure holds, payload doesn't.
    std::vector<std::uint8_t> b = blob;
    b[b.size() - 9] = 7;  // last status byte (just before the checksum)
    const std::uint64_t sum =
        fnv1a64(std::span<const std::uint8_t>(b).first(b.size() - 8));
    for (int i = 0; i < 8; ++i) {
      b[b.size() - 8 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(sum >> (8 * i));
    }
    EXPECT_EQ(classify_query_blob(b), CheckpointError::kBadPayload);
  }
  EXPECT_THROW(QuerySnapshot::from_blob({}), std::runtime_error);
}

TEST(QueryBlob, FileRoundTripThroughMmap) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / "query_blob").string();
  fs::create_directories(dir);
  const std::string path = dir + "/snap.dqry";

  const Graph g = gen::random_connected(10, 6, 9);
  const std::vector<std::uint8_t> blob = encode_static(g);
  write_blob_atomic(path, blob);

  const QuerySnapshot snap = QuerySnapshot::from_file(path);
  EXPECT_EQ(snap.bytes().size(), blob.size());
  EXPECT_EQ(0, std::memcmp(snap.bytes().data(), blob.data(), blob.size()));
  validate_snapshot(snap, seq::apsp(g), nullptr, /*expect_hops=*/false);

  EXPECT_THROW(QuerySnapshot::from_file(dir + "/absent.dqry"),
               std::runtime_error);
}

// On a freshly built (churn-free) service every served row is exact, and
// there the hop tables are guaranteed path-consistent: each finite off-
// diagonal answer's next hop steps one closer to the target.
TEST(QueryBlob, FreshServiceHopsAdvanceThePath) {
  const Graph g = gen::random_connected(14, 10, 13);
  DapspService svc(g);
  const QuerySnapshot snap = QuerySnapshot::from_blob(
      encode_query_snapshot(svc, /*sequence=*/0, /*degraded=*/false));
  const DistanceMatrix oracle = seq::apsp(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const QueryAnswer a = snap.p2p(u, v);
      ASSERT_EQ(a.status, RowStatus::kExact);
      ASSERT_EQ(a.dist, oracle.at(u, v));
      if (u == v || a.dist == kInfDist) continue;
      ASSERT_NE(a.next_hop, kNoNextHop);
      ASSERT_TRUE(g.has_edge(u, a.next_hop));
      ASSERT_EQ(oracle.at(a.next_hop, v), a.dist - 1);
    }
  }
}

// ----------------------------------------------- differential churn validation

// The seeded sweep: 200 graph x churn configurations. Every snapshot the
// service publishes (mid-epoch degraded ones included) is validated in the
// sink, answer by answer, against the post-batch oracle and the service's
// own query path.
class ValidatingSink final : public SnapshotSink {
 public:
  void on_snapshot(const DapspService& svc, bool degraded) override {
    const std::vector<std::uint8_t> blob =
        encode_query_snapshot(svc, sequence_++, degraded);
    const QuerySnapshot snap = QuerySnapshot::from_blob(blob);
    EXPECT_EQ(snap.epoch(), svc.epoch());
    EXPECT_EQ(snap.degraded(), degraded);
    const DistanceMatrix oracle = oracle_table(svc.dynamic_graph());
    fresh_checked += validate_snapshot(snap, oracle, &svc);
    if (degraded) ++degraded_publishes;
  }

  std::size_t fresh_checked = 0;
  std::size_t degraded_publishes = 0;

 private:
  std::uint64_t sequence_ = 0;
};

TEST(QueryDifferential, TwoHundredSeededGraphChurnConfigs) {
  std::size_t total_fresh = 0;
  std::size_t total_degraded = 0;
  for (std::uint64_t cfg = 0; cfg < 200; ++cfg) {
    const NodeId n = static_cast<NodeId>(6 + cfg % 9);          // 6..14
    const NodeId extra = static_cast<NodeId>(cfg % 7);
    const Graph g = gen::random_connected(n, extra, 100 + cfg);

    ValidatingSink sink;
    ServiceConfig sc;
    sc.snapshot_sink = &sink;
    if (cfg % 5 == 0) sc.scrub_every = 2;
    DapspService svc(g, sc);

    DeltaPlanConfig pc;
    pc.seed = 1000 + cfg;
    pc.max_batch = 1 + static_cast<std::uint32_t>(cfg % 4);
    pc.crash_prob = (cfg % 3 == 0) ? 0.2 : 0.0;
    DeltaPlan plan(pc);
    for (int e = 0; e < 3; ++e) {
      const ChurnBatch batch = plan.next(svc.dynamic_graph());
      svc.step(batch);
    }
    EXPECT_GT(sink.fresh_checked, 0u) << "config " << cfg;
    total_fresh += sink.fresh_checked;
    total_degraded += sink.degraded_publishes;
  }
  // The sweep must actually exercise both publish points.
  EXPECT_GT(total_fresh, 0u);
  EXPECT_GT(total_degraded, 0u);
}

// The deterministic race regression (no threads): a join makes one cell of
// every clean row wrong until the patch lands, and edge churn invalidates
// whole rows — at the mid-epoch publish point neither may hide behind
// kExact. ValidatingSink::on_snapshot asserts exactly that, so this test
// just drives the scenario; it fails loudly if the service ever publishes a
// fresh-claiming row with a pre-batch value.
TEST(QueryDifferential, MidEpochPublishNeverOverclaims) {
  // Path 0-1-2-3-4 plus a chord; crash 2, then rejoin it with fresh
  // attachments in one batch (join + incident inserts).
  const Graph g(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});

  ValidatingSink sink;
  ServiceConfig sc;
  sc.snapshot_sink = &sink;
  DapspService svc(g, sc);

  ChurnBatch crash;
  crash.crashes.push_back(2);
  svc.step(crash);

  ChurnBatch rejoin;
  rejoin.deltas.push_back({DeltaKind::kNodeJoin, 2, 2});
  rejoin.deltas.push_back({DeltaKind::kEdgeInsert, 2, 0});
  rejoin.deltas.push_back({DeltaKind::kEdgeInsert, 2, 4});
  svc.step(rejoin);

  // A distance-changing removal (the chord) for good measure.
  ChurnBatch remove;
  remove.deltas.push_back({DeltaKind::kEdgeRemove, 0, 4});
  svc.step(remove);

  EXPECT_GE(sink.degraded_publishes, 2u);
  EXPECT_TRUE(svc.fully_certified());
}

// Attaching a sink must not perturb the service: same seed with and without
// a sink ends bit-identical.
TEST(QueryDifferential, SinkIsObservationOnly) {
  const Graph g = gen::random_connected(12, 8, 17);
  ValidatingSink sink;
  ServiceConfig with;
  with.snapshot_sink = &sink;
  DapspService a(g, with);
  DapspService b(g, {});

  DeltaPlanConfig pc;
  pc.seed = 77;
  DeltaPlan pa(pc), pb(pc);
  for (int e = 0; e < 5; ++e) {
    a.step(pa.next(a.dynamic_graph()));
    b.step(pb.next(b.dynamic_graph()));
  }
  EXPECT_TRUE(a.served_dist() == b.served_dist());
  EXPECT_TRUE(std::equal(a.row_statuses().begin(), a.row_statuses().end(),
                         b.row_statuses().begin()));
}

// ------------------------------------------------------------- SnapshotStore

std::unique_ptr<const QuerySnapshot> make_snap(const Graph& g,
                                               std::uint64_t seq) {
  const DistanceMatrix dist = seq::apsp(g);
  const std::vector<std::uint8_t> active(g.num_nodes(), 1);
  const std::vector<RowStatus> status = all_exact(g.num_nodes());
  return std::make_unique<const QuerySnapshot>(
      QuerySnapshot::from_blob(encode_query_snapshot_tables(
          dist, nullptr, active, status, seq, seq, false)));
}

TEST(SnapshotStore, PinKeepsRetiredSnapshotAliveAcrossSwaps) {
  const Graph g = gen::random_connected(8, 4, 3);
  SnapshotStore store;
  SnapshotReader reader(store);
  EXPECT_FALSE(reader.acquire());  // nothing published yet

  store.publish(make_snap(g, 1));
  SnapshotRef pinned = reader.acquire();
  ASSERT_TRUE(pinned);
  EXPECT_EQ(pinned->sequence(), 1u);

  // Swap twice while the first snapshot is pinned: it must stay readable
  // (ASan would flag a premature free) and unreclaimed.
  store.publish(make_snap(g, 2));
  store.publish(make_snap(g, 3));
  EXPECT_EQ(store.swaps(), 3u);
  EXPECT_GE(store.retired_pending(), 1u);
  EXPECT_EQ(pinned->sequence(), 1u);
  EXPECT_EQ(pinned->p2p(0, 1).status, RowStatus::kExact);

  // A fresh acquire on the same reader... requires releasing the pin first
  // (one outstanding ref per reader).
  pinned.release();
  SnapshotRef current = reader.acquire();
  ASSERT_TRUE(current);
  EXPECT_EQ(current->sequence(), 3u);
  current.release();

  // With no pins, the next publish reclaims the whole backlog.
  store.publish(make_snap(g, 4));
  EXPECT_EQ(store.retired_pending(), 0u);
}

TEST(SnapshotStore, ReaderSlotsAreClaimedAndReleased) {
  SnapshotStore store;
  std::vector<std::unique_ptr<SnapshotReader>> readers;
  for (std::size_t i = 0; i < kMaxSnapshotReaders; ++i) {
    readers.push_back(std::make_unique<SnapshotReader>(store));
  }
  EXPECT_THROW(SnapshotReader extra(store), std::runtime_error);
  readers.pop_back();
  EXPECT_NO_THROW(SnapshotReader again(store));
}

// 1/2/8 reader threads validating answers (including mid-swap ones) while
// the writer churns the service and swaps snapshots through the store.
// Run under TSan via check.sh --tsan.
void run_concurrent_soak(unsigned reader_count) {
  constexpr int kEpochs = 40;
  const Graph g = gen::random_connected(16, 10, 33);

  SnapshotStore store;
  ServingPublisher publisher(store);
  ServiceConfig sc;
  sc.snapshot_sink = &publisher;

  // oracles[e] is written by the writer before any snapshot at epoch e can
  // be published; readers only index it through a pinned snapshot's epoch.
  std::vector<DistanceMatrix> oracles(kEpochs + 1);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> validated{0};

  DynamicGraph shadow(g);
  oracles[0] = oracle_table(shadow);
  DapspService svc(g, sc);

  std::vector<std::thread> readers;
  for (unsigned t = 0; t < reader_count; ++t) {
    readers.emplace_back([&, t] {
      SnapshotReader reader(store);
      Rng rng(900 + t);
      while (!done.load(std::memory_order_acquire)) {
        std::uint64_t local = 0;
        SnapshotRef ref = reader.acquire();
        if (!ref) continue;
        const DistanceMatrix& oracle = oracles[ref->epoch()];
        const NodeId n = ref->n();
        for (int i = 0; i < 64; ++i) {
          const NodeId u = static_cast<NodeId>(rng.below(n));
          const NodeId v = static_cast<NodeId>(rng.below(n));
          const QueryAnswer a = ref->p2p(u, v);
          if (!a.active || a.status == RowStatus::kStale) continue;
          ASSERT_EQ(a.dist, oracle.at(u, v))
              << "overclaim at epoch " << ref->epoch() << " (" << u << ", "
              << v << ")";
          ++local;
        }
        const NodeId u = static_cast<NodeId>(rng.below(n));
        const EccentricityAnswer ec = ref->eccentricity(u);
        if (ec.active && ec.status != RowStatus::kStale) {
          std::uint32_t naive = 0;
          for (NodeId v = 0; v < n; ++v) {
            if (!ref->active(v)) continue;
            const std::uint32_t d = oracle.at(v, u);
            if (d != kInfDist) naive = std::max(naive, d);
          }
          ASSERT_EQ(ec.ecc, naive);
          ++local;
        }
        validated.fetch_add(local, std::memory_order_relaxed);
      }
    });
  }

  DeltaPlanConfig pc;
  pc.seed = 4242 + reader_count;
  pc.max_batch = 3;
  DeltaPlan plan(pc);
  for (int e = 1; e <= kEpochs; ++e) {
    const ChurnBatch batch = plan.next(svc.dynamic_graph());
    apply_batch(shadow, batch);
    oracles[static_cast<std::size_t>(e)] = oracle_table(shadow);
    svc.step(batch);
  }
  // Don't shut down before every reader has actually validated something —
  // with many readers the churn loop can outrun thread start-up.
  for (int spin = 0; spin < 4000 && validated.load() < reader_count; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();

  EXPECT_GE(store.swaps(), static_cast<std::uint64_t>(kEpochs));
  EXPECT_GT(validated.load(), 0u);
}

TEST(SnapshotStoreConcurrent, OneReaderUnderChurn) { run_concurrent_soak(1); }
TEST(SnapshotStoreConcurrent, TwoReadersUnderChurn) { run_concurrent_soak(2); }
TEST(SnapshotStoreConcurrent, EightReadersUnderChurn) {
  run_concurrent_soak(8);
}

// ---------------------------------------------------------------- LabelCache

TEST(LabelCache, MatchesUncachedEstimatesAndEvicts) {
  const Graph g = gen::random_connected(20, 12, 11);
  const DistanceLabeling lab = build_distance_labels(g, 2);
  const QuerySnapshot snap =
      QuerySnapshot::from_blob(encode_static(g, &lab));

  LabelCache cache(2);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(cache.estimate(snap, u, v), snap.label_estimate(u, v));
    }
  }
  // Row-major sweep: each source is a miss once, then hits for the rest of
  // its row (capacity 2 keeps the current source resident).
  EXPECT_EQ(cache.misses(), g.num_nodes());
  EXPECT_GT(cache.hits(), 0u);

  const std::uint64_t misses_before = cache.misses();
  cache.estimate(snap, 0, 1);  // evicted long ago -> one more miss
  EXPECT_EQ(cache.misses(), misses_before + 1);

  LabelCache none(0);
  EXPECT_EQ(none.estimate(snap, 1, 2), snap.label_estimate(1, 2));
  EXPECT_EQ(none.hits(), 0u);

  const QuerySnapshot plain = QuerySnapshot::from_blob(encode_static(g));
  EXPECT_THROW(cache.estimate(plain, 0, 1), std::logic_error);
}

}  // namespace
}  // namespace dapsp::core
