// The trace/metrics subsystem (DESIGN.md §12): sharded collection must yield
// byte-identical trace files and metrics at every EngineConfig::threads
// value, on fault-free and faulty runs alike; the exporters must produce
// well-formed output (Chrome-trace timestamps non-decreasing in file order);
// and the per-edge-load profile must exhibit Lemma 1's congestion-free flood
// schedule on pebble-APSP runs.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "congest/engine.h"
#include "congest/faults.h"
#include "congest/reliable.h"
#include "congest/trace.h"
#include "core/certify.h"
#include "core/pebble_apsp.h"
#include "core/primitives/bfs_process.h"
#include "graph/generators.h"
#include "util/metrics.h"

namespace dapsp::congest {
namespace {

const std::uint32_t kThreadCounts[] = {1, 2, 8};

// Self-correcting BFS flood from node 0 (same probe as test_determinism):
// faulty transports produce long, fault-shaped traces.
class Flood final : public Process {
 public:
  explicit Flood(NodeId id) : dist_(id == 0 ? 0 : kInfDist) {}

  void on_round(RoundCtx& ctx) override {
    bool improved = dist_ == 0 && ctx.round() == 0;
    for (const Received& r : ctx.inbox()) {
      if (r.msg.f[0] + 1 < dist_) {
        dist_ = r.msg.f[0] + 1;
        improved = true;
      }
    }
    if (improved) ctx.send_all(Message::make(1, dist_));
    ran_ = true;
  }
  bool done() const override { return ran_; }

 private:
  std::uint32_t dist_;
  bool ran_ = false;
};

std::vector<std::uint64_t> to_vec(const Histogram& h) {
  return {h.counts().begin(), h.counts().end()};
}

// One instrumented Flood run: full trace serialized to JSONL plus the merged
// metrics, for byte-level comparison across thread counts.
struct TracedRun {
  std::string stats;
  std::string status;
  std::string trace_jsonl;
  std::vector<std::uint64_t> edge_bits;
  std::vector<std::uint64_t> edge_messages;
  std::vector<std::uint64_t> round_activity;
};

TracedRun run_traced(const Graph& g, EngineConfig cfg, std::uint32_t threads) {
  TraceLog trace;
  EngineMetrics metrics;
  cfg.threads = threads;
  cfg.max_rounds = 200000;
  cfg.trace = &trace;
  cfg.metrics = &metrics;
  Engine e(g, cfg);
  e.init([](NodeId v) { return std::make_unique<Flood>(v); });
  const Outcome out = e.run_bounded();
  TracedRun run;
  run.stats = out.stats.debug_string();
  run.status = std::string(to_string(out.status)) + " " + out.message;
  std::ostringstream os;
  trace.write_jsonl(os);
  run.trace_jsonl = std::move(os).str();
  run.edge_bits = to_vec(metrics.edge_bits);
  run.edge_messages = to_vec(metrics.edge_messages);
  run.round_activity = to_vec(metrics.round_activity);
  return run;
}

// Fault plans from the determinism suite: probabilistic loss, structural
// failures, and the reliable layer over a lossy wire.
EngineConfig lossy_config() {
  FaultPlan plan;
  plan.seed = 9001;
  plan.drop_prob = 0.25;
  plan.duplicate_prob = 0.15;
  plan.delay_prob = 0.2;
  plan.max_extra_delay = 4;
  EngineConfig cfg;
  cfg.faults = plan;
  return cfg;
}

EngineConfig structural_config(const Graph& g) {
  FaultPlan plan;
  plan.seed = 4242;
  plan.drop_prob = 0.05;
  plan.link_failures.push_back({g.edges()[0].u, g.edges()[0].v, 3});
  plan.crashes.push_back({g.num_nodes() - 1, 5});
  EngineConfig cfg;
  cfg.faults = plan;
  return cfg;
}

EngineConfig reliable_lossy_config() {
  EngineConfig cfg = lossy_config();
  apply_reliable(cfg);
  return cfg;
}

std::vector<Graph> trace_graphs() {
  std::vector<Graph> out;
  out.push_back(gen::grid(4, 5));
  out.push_back(gen::petersen());
  out.push_back(gen::random_connected(24, 20, 33));
  return out;
}

// --- Determinism: byte-identical traces at every thread count -----------

TEST(TraceDeterminism, FaultFreeRunsAcrossThreadCounts) {
  for (const Graph& g : trace_graphs()) {
    const TracedRun ref = run_traced(g, EngineConfig{}, 1);
    ASSERT_FALSE(ref.trace_jsonl.empty()) << g.summary();
    for (const std::uint32_t t : {2u, 8u}) {
      const TracedRun r = run_traced(g, EngineConfig{}, t);
      ASSERT_EQ(r.stats, ref.stats) << g.summary() << " threads=" << t;
      ASSERT_EQ(r.trace_jsonl, ref.trace_jsonl)
          << g.summary() << " threads=" << t;
      ASSERT_EQ(r.edge_bits, ref.edge_bits) << g.summary() << " threads=" << t;
      ASSERT_EQ(r.edge_messages, ref.edge_messages)
          << g.summary() << " threads=" << t;
      ASSERT_EQ(r.round_activity, ref.round_activity)
          << g.summary() << " threads=" << t;
    }
  }
}

TEST(TraceDeterminism, FaultyRunsAcrossThreadCounts) {
  for (const Graph& g : trace_graphs()) {
    const EngineConfig plans[] = {lossy_config(), structural_config(g),
                                  reliable_lossy_config()};
    int plan_no = 0;
    for (const EngineConfig& cfg : plans) {
      ++plan_no;
      const TracedRun ref = run_traced(g, cfg, 1);
      ASSERT_FALSE(ref.trace_jsonl.empty())
          << g.summary() << " plan=" << plan_no;
      for (const std::uint32_t t : {2u, 8u}) {
        const TracedRun r = run_traced(g, cfg, t);
        ASSERT_EQ(r.status, ref.status)
            << g.summary() << " plan=" << plan_no << " threads=" << t;
        ASSERT_EQ(r.stats, ref.stats)
            << g.summary() << " plan=" << plan_no << " threads=" << t;
        ASSERT_EQ(r.trace_jsonl, ref.trace_jsonl)
            << g.summary() << " plan=" << plan_no << " threads=" << t;
        ASSERT_EQ(r.edge_messages, ref.edge_messages)
            << g.summary() << " plan=" << plan_no << " threads=" << t;
      }
    }
  }
}

// The send observer and the trace consume the same merged stream: replaying
// the log's kSend events reproduces the observer's transcript exactly.
TEST(TraceDeterminism, ObserverAndTraceSeeTheSameSendStream) {
  const Graph g = gen::grid(4, 4);
  for (const std::uint32_t t : kThreadCounts) {
    TraceLog trace;
    std::string observed;
    EngineConfig cfg = lossy_config();
    cfg.threads = t;
    cfg.max_rounds = 200000;
    cfg.trace = &trace;
    cfg.send_observer = [&observed](const SendEvent& ev) {
      observed += std::to_string(ev.round) + ":" + std::to_string(ev.from) +
                  ">" + std::to_string(ev.to) + ";";
    };
    Engine e(g, cfg);
    e.init([](NodeId v) { return std::make_unique<Flood>(v); });
    e.run_bounded();
    std::string replayed;
    for (const TraceEvent& ev : trace.events()) {
      if (ev.kind != TraceEventKind::kSend) continue;
      replayed += std::to_string(ev.round) + ":" + std::to_string(ev.node) +
                  ">" + std::to_string(ev.peer) + ";";
    }
    ASSERT_FALSE(observed.empty()) << "threads=" << t;
    ASSERT_EQ(replayed, observed) << "threads=" << t;
  }
}

// --- Event semantics ----------------------------------------------------

TEST(TraceEvents, FaultyRunRecordsTransportFates) {
  const Graph g = gen::grid(4, 5);
  TraceLog trace;
  EngineConfig cfg = structural_config(g);
  cfg.max_rounds = 200000;
  cfg.trace = &trace;
  Engine e(g, cfg);
  e.init([](NodeId v) { return std::make_unique<Flood>(v); });
  const Outcome out = e.run_bounded();
  std::uint64_t sends = 0, delivers = 0, drops = 0, crashes = 0;
  for (const TraceEvent& ev : trace.events()) {
    switch (ev.kind) {
      case TraceEventKind::kSend: ++sends; break;
      case TraceEventKind::kDeliver: ++delivers; break;
      case TraceEventKind::kDrop: ++drops; break;
      case TraceEventKind::kCrash:
        ++crashes;
        EXPECT_EQ(ev.node, g.num_nodes() - 1);
        EXPECT_EQ(ev.peer, kTraceNoPeer);
        break;
      default: break;
    }
  }
  EXPECT_EQ(sends, out.stats.messages);
  EXPECT_GT(drops, 0u);
  EXPECT_EQ(crashes, 1u);
  // Crash-absorbed inbox drops are counted in stats but not traced
  // per-message, so delivered <= sent - dropped.
  EXPECT_LE(delivers + drops, sends);
}

TEST(TraceEvents, DetectorVerdictsAreTraced) {
  const Graph g = gen::path(2);
  FaultPlan plan;
  plan.crashes.push_back({1, 5});
  TraceLog trace;
  EngineConfig cfg;
  cfg.faults = plan;
  cfg.max_rounds = 5000;
  cfg.trace = &trace;
  apply_reliable(cfg);
  Engine e(g, cfg);
  e.init([](NodeId v) { return std::make_unique<Flood>(v); });
  const Outcome out = e.run_bounded();
  std::uint64_t verdicts = 0;
  for (const TraceEvent& ev : trace.events()) {
    if (ev.kind != TraceEventKind::kNeighborDown) continue;
    ++verdicts;
    EXPECT_EQ(ev.node, 0u);
    EXPECT_EQ(ev.peer, 1u);
  }
  EXPECT_EQ(verdicts, out.stats.neighbors_suspected);
  EXPECT_EQ(verdicts, 1u);
}

TEST(TraceEvents, FrontierEventsMatchTheDistanceTable) {
  const Graph g = gen::random_connected(32, 64, 7);
  TraceLog trace;
  core::ApspOptions opt;
  opt.engine.trace = &trace;
  const core::ApspResult r = core::run_pebble_apsp(g, opt);
  std::uint64_t frontier = 0;
  for (const TraceEvent& ev : trace.events()) {
    if (ev.kind != TraceEventKind::kFrontier) continue;
    ++frontier;
    ASSERT_NE(ev.peer, kTraceNoPeer);
    // The adopted distance is final: pebble-APSP frontiers never re-adopt.
    ASSERT_EQ(ev.msg.f[0], r.dist.at(ev.node, ev.peer))
        << "node " << ev.node << " source " << ev.peer;
  }
  // Every node adopts every other node's flood exactly once.
  const std::uint64_t n = g.num_nodes();
  EXPECT_EQ(frontier, n * (n - 1));
}

// --- Lemma 1: the flood schedule is congestion-free ---------------------

TEST(TraceLemma1, PebbleApspFloodsNeverCollideOnAnEdge) {
  std::vector<Graph> graphs;
  graphs.push_back(gen::grid(5, 5));
  graphs.push_back(gen::petersen());
  graphs.push_back(gen::random_connected(40, 80, 11));
  for (const Graph& g : graphs) {
    TraceLog trace;
    EngineMetrics metrics;
    core::ApspOptions opt;
    opt.engine.trace = &trace;
    opt.engine.metrics = &metrics;
    const core::ApspResult r = core::run_pebble_apsp(g, opt);
    // At most one kApspFlood message per directed edge per round (Lemma 1).
    EXPECT_EQ(max_sends_per_edge_round(trace.events(), core::kApspFlood), 1u)
        << g.summary();
    // The per-edge-load histogram saw every busy edge-round, and the round
    // activity histogram accounts for every message.
    ASSERT_FALSE(metrics.edge_messages.empty()) << g.summary();
    std::uint64_t activity_sum = 0;
    const auto counts = metrics.round_activity.counts();
    for (std::size_t v = 0; v < counts.size(); ++v) {
      activity_sum += v * counts[v];
    }
    EXPECT_EQ(activity_sum, r.stats.messages) << g.summary();
    EXPECT_EQ(metrics.round_activity.total(), r.stats.rounds) << g.summary();
  }
}

// FloodCongestionMonitor::scan over a recorded trace must agree with the
// live hook fed by the engine's replay.
TEST(TraceLemma1, MonitorScanMatchesLiveHook) {
  const Graph g = gen::random_connected(32, 64, 7);
  TraceLog trace;
  core::FloodCongestionMonitor live(g);
  core::ApspOptions opt;
  opt.engine.trace = &trace;
  opt.engine.send_observer = live.hook();
  core::run_pebble_apsp(g, opt);
  core::FloodCongestionMonitor offline(g);
  offline.scan(trace.events());
  EXPECT_GT(live.flood_sends(), 0u);
  EXPECT_EQ(offline.flood_sends(), live.flood_sends());
  EXPECT_EQ(offline.violations(), live.violations());
  EXPECT_EQ(live.violations(), 0u);
}

// --- Exporters ----------------------------------------------------------

TraceLog sample_log() {
  TraceLog log;
  log.append({TraceEventKind::kSend, 0, 1, 0, 0, Message::make(1, 7)});
  log.append({TraceEventKind::kDelay, 0, 2, 0, 3, Message::make(1, 7)});
  log.append({TraceEventKind::kDeliver, 1, 0, 1, 0, Message::make(1, 7)});
  log.append({TraceEventKind::kCrash, 2, kTraceNoPeer, 4, 0, Message{}});
  return log;
}

TEST(TraceExport, JsonlOneObjectPerEvent) {
  const TraceLog log = sample_log();
  std::ostringstream os;
  log.write_jsonl(os);
  const std::string text = os.str();
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n';
  EXPECT_EQ(lines, log.size());
  EXPECT_NE(text.find("\"kind\": \"send\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"crash\""), std::string::npos);
}

TEST(TraceExport, CsvHasHeaderAndOneRowPerEvent) {
  const TraceLog log = sample_log();
  std::ostringstream os;
  log.write_csv(os);
  const std::string text = os.str();
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n';
  EXPECT_EQ(lines, log.size() + 1);  // header row
  EXPECT_EQ(text.rfind("kind,node,peer,round,msg_kind", 0), 0u);
}

// Extract every "ts": value from a Chrome-trace JSON string, in file order.
std::vector<long> chrome_timestamps(const std::string& text) {
  std::vector<long> ts;
  std::size_t pos = 0;
  while ((pos = text.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    ts.push_back(std::stol(text.substr(pos)));
  }
  return ts;
}

TEST(TraceExport, ChromeJsonTimestampsAreNonDecreasing) {
  const Graph g = gen::grid(4, 4);
  TraceLog trace;
  EngineConfig cfg = lossy_config();
  cfg.max_rounds = 200000;
  cfg.trace = &trace;
  Engine e(g, cfg);
  e.init([](NodeId v) { return std::make_unique<Flood>(v); });
  e.run_bounded();
  for (const TraceLanes lanes : {TraceLanes::kPerNode, TraceLanes::kPerFlood}) {
    std::ostringstream os;
    trace.write_chrome_json(os, lanes);
    const std::string text = os.str();
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    const std::vector<long> ts = chrome_timestamps(text);
    if (lanes == TraceLanes::kPerNode) {
      ASSERT_EQ(ts.size(), trace.size());
    }
    for (std::size_t i = 1; i < ts.size(); ++i) {
      ASSERT_LE(ts[i - 1], ts[i]) << "event " << i << " lanes="
                                  << static_cast<int>(lanes);
    }
  }
}

// --- util/metrics -------------------------------------------------------

TEST(Metrics, HistogramExactCountsAndQuantiles) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  h.add(3);
  h.add(0, 2);
  h.add(7, 5);
  EXPECT_EQ(h.total(), 8u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.count(7), 5u);
  EXPECT_EQ(h.count(4), 0u);
  EXPECT_EQ(h.min_value(), 0u);
  EXPECT_EQ(h.max_value(), 7u);
  EXPECT_DOUBLE_EQ(h.mean(), (0.0 * 2 + 3.0 + 7.0 * 5) / 8.0);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.25), 0u);
  EXPECT_EQ(h.quantile(0.5), 7u);
  EXPECT_EQ(h.quantile(1.0), 7u);

  Histogram other;
  other.add(3, 4);
  other.add(9);
  h.merge(other);
  EXPECT_EQ(h.total(), 13u);
  EXPECT_EQ(h.count(3), 5u);
  EXPECT_EQ(h.max_value(), 9u);

  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(7), 0u);
}

TEST(Metrics, HistogramMergeIsCommutative) {
  Histogram a, b;
  a.add(1, 3);
  a.add(5);
  b.add(5, 2);
  b.add(12);
  Histogram ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.total(), ba.total());
  EXPECT_EQ(ab.max_value(), ba.max_value());
  for (std::uint64_t v = 0; v <= 12; ++v) {
    EXPECT_EQ(ab.count(v), ba.count(v)) << "value " << v;
  }
}

TEST(Metrics, RegistryExportsJsonAndCsv) {
  MetricsRegistry reg;
  reg.counter("rounds") = 17;
  reg.counter("messages") = 230;
  reg.histogram("edge_bits").add(32, 4);
  reg.histogram("edge_bits").add(64);
  std::ostringstream json;
  reg.write_json(json);
  const std::string j = json.str();
  EXPECT_NE(j.find("\"rounds\": 17"), std::string::npos);
  EXPECT_NE(j.find("\"messages\": 230"), std::string::npos);
  EXPECT_NE(j.find("\"edge_bits\""), std::string::npos);
  EXPECT_NE(j.find("\"total\": 5"), std::string::npos);
  std::ostringstream csv;
  reg.write_csv(csv);
  const std::string c = csv.str();
  EXPECT_EQ(c.rfind("metric,kind,value,count", 0), 0u);
  EXPECT_NE(c.find("rounds,counter"), std::string::npos);
  EXPECT_NE(c.find("edge_bits,histogram,32,4"), std::string::npos);
  // References returned by the registry stay valid and live.
  EXPECT_EQ(reg.counters().size(), 2u);
  EXPECT_EQ(reg.histograms().size(), 1u);
}

}  // namespace
}  // namespace dapsp::congest
