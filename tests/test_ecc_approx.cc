// Theorem 4 / Corollary 4: (x,1+eps)-approximation of eccentricities,
// diameter, radius, center, peripheral vertices — guarantee properties and
// the O(n/D + D) round shape.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/ecc_approx.h"
#include "graph/generators.h"
#include "seq/properties.h"
#include "testing/suite.h"

namespace dapsp::core {
namespace {

void expect_guarantees(const Graph& g, double eps, const char* label) {
  EccApproxOptions opt;
  opt.epsilon = eps;
  const EccApproxResult r = run_ecc_approx(g, opt);
  const auto ecc = seq::eccentricities(g);
  const std::uint32_t diam = *std::max_element(ecc.begin(), ecc.end());
  const std::uint32_t rad = *std::min_element(ecc.begin(), ecc.end());

  // Slack calibration: k <= eps * D0 / 8 <= eps * D / 4.
  EXPECT_LE(r.k, eps * r.d0 / 8.0 + 1e-9) << label;

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(r.ecc_estimate[v], ecc[v]) << label << " v=" << v;
    EXPECT_LE(r.ecc_estimate[v], ecc[v] + r.k) << label << " v=" << v;
    // (x,1+eps): k <= eps*D/4 <= eps*ecc(v)/2.
    EXPECT_LE(r.ecc_estimate[v],
              static_cast<double>(ecc[v]) * (1.0 + eps) + 1e-9)
        << label << " v=" << v;
  }
  EXPECT_GE(r.diameter_estimate, diam) << label;
  EXPECT_LE(r.diameter_estimate, diam + r.k) << label;
  EXPECT_GE(r.radius_estimate, rad) << label;
  EXPECT_LE(r.radius_estimate, rad + r.k) << label;

  // Set approximations (Definition 5 extended to sets): the true center /
  // peripheral vertices are contained, and every member is within 2k of
  // qualifying.
  const auto true_center = seq::center(g);
  const auto true_periph = seq::peripheral_vertices(g);
  for (const NodeId c : true_center) {
    EXPECT_TRUE(std::binary_search(r.center_approx.begin(),
                                   r.center_approx.end(), c))
        << label << " center node " << c << " missing";
  }
  for (const NodeId p : true_periph) {
    EXPECT_TRUE(std::binary_search(r.peripheral_approx.begin(),
                                   r.peripheral_approx.end(), p))
        << label << " peripheral node " << p << " missing";
  }
  for (const NodeId v : r.center_approx) {
    EXPECT_LE(ecc[v], rad + 2 * r.k) << label << " center approx " << v;
  }
  for (const NodeId v : r.peripheral_approx) {
    EXPECT_GE(ecc[v] + 2 * r.k, diam) << label << " periph approx " << v;
  }
}

TEST(EccApprox, GuaranteesOnSmallSuite) {
  for (const auto& [name, g] : testing::small_suite()) {
    expect_guarantees(g, 0.5, name.c_str());
  }
}

TEST(EccApprox, GuaranteesOnMediumSuite) {
  for (const auto& [name, g] : testing::medium_suite()) {
    expect_guarantees(g, 0.5, name.c_str());
  }
}

TEST(EccApprox, EpsilonSweep) {
  const Graph g = gen::path(150);
  for (const double eps : {0.1, 0.25, 1.0, 2.0}) {
    expect_guarantees(g, eps, "path150");
  }
}

TEST(EccApprox, SmallDiameterFallsBackToExact) {
  // D0 small => k = 0 => DOM = V, estimates are exact.
  const Graph g = gen::complete(20);
  const EccApproxResult r = run_ecc_approx(g);
  EXPECT_EQ(r.k, 0u);
  EXPECT_EQ(r.diameter_estimate, 1u);
  EXPECT_EQ(r.radius_estimate, 1u);
}

TEST(EccApprox, DomSizeShrinksWithDiameter) {
  // Fixed n, growing D: |DOM| ~ n/(k+1) ~ n/(eps*D) shrinks.
  const EccApproxResult shallow = run_ecc_approx(gen::path_of_cliques(4, 32));
  const EccApproxResult deep = run_ecc_approx(gen::path(128));
  EXPECT_GT(shallow.dom_size, deep.dom_size);
}

TEST(EccApprox, RoundShape) {
  // O(n/D + D): on a long path (D = n-1) the whole run is O(D) = O(n);
  // crucially |DOM| stays tiny so the loop is not n long.
  const Graph g = gen::path(200);
  const EccApproxResult r = run_ecc_approx(g);
  EXPECT_LT(r.dom_size, 30u);
  EXPECT_LE(r.stats.rounds, 24 * 200u);  // a few D's worth of phases
}

TEST(EccApprox, InvalidEpsilonThrows) {
  EXPECT_THROW(run_ecc_approx(gen::path(4), {.epsilon = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(run_ecc_approx(gen::path(4), {.epsilon = -1.0}),
               std::invalid_argument);
}

TEST(EccApprox, Deterministic) {
  const Graph g = gen::random_connected(100, 60, 5);
  const EccApproxResult a = run_ecc_approx(g);
  const EccApproxResult b = run_ecc_approx(g);
  EXPECT_EQ(a.ecc_estimate, b.ecc_estimate);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

}  // namespace
}  // namespace dapsp::core
