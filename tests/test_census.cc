// Section 8: the two-hop census (|N2(v)| for every node), the task
// Theorem 8 proves Omega(n/B)-hard on the gadget family.
#include <gtest/gtest.h>

#include "core/neighborhood_census.h"
#include "graph/generators.h"
#include "graph/hard_instances.h"
#include "seq/properties.h"
#include "testing/suite.h"

namespace dapsp::core {
namespace {

TEST(Census, MatchesOracleOnSuite) {
  for (const auto& [name, g] : testing::small_suite()) {
    const CensusResult r = run_two_hop_census(g);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(r.n2[v], seq::count_within(g, v, 2)) << name << " v=" << v;
    }
  }
}

TEST(Census, KnownValues) {
  // Path: interior nodes see 5 nodes within 2 hops.
  const CensusResult path = run_two_hop_census(gen::path(10));
  EXPECT_EQ(path.n2[0], 3u);
  EXPECT_EQ(path.n2[5], 5u);
  // Star: everyone sees everyone within 2 hops.
  const CensusResult star = run_two_hop_census(gen::star(12));
  for (const std::uint32_t c : star.n2) EXPECT_EQ(c, 12u);
}

TEST(Census, DiameterTwoMeansFullCensus) {
  // |N2(v)| = n for all v iff diameter <= 2 — the reduction in Theorem 8.
  const Graph g2 = hard::diameter_2_vs_3(5, false, 3).graph;
  const CensusResult r2 = run_two_hop_census(g2);
  for (const std::uint32_t c : r2.n2) EXPECT_EQ(c, g2.num_nodes());

  const Graph g3 = hard::diameter_2_vs_3(5, true, 3).graph;
  const CensusResult r3 = run_two_hop_census(g3);
  bool some_incomplete = false;
  for (const std::uint32_t c : r3.n2) {
    some_incomplete |= c < g3.num_nodes();
  }
  EXPECT_TRUE(some_incomplete);
}

TEST(Census, RoundsScaleWithMaxDegree) {
  // Bounded degree: cheap. Gadgets (degree ~ n): Theta(n), per Theorem 8.
  const CensusResult cheap = run_two_hop_census(gen::grid(12, 12));
  EXPECT_LE(cheap.stats.rounds, 150u);  // Delta = 4, D = 22

  const Graph gadget = hard::diameter_2_vs_3(24, true, 1).graph;  // n = 99
  const CensusResult hard_case = run_two_hop_census(gadget);
  EXPECT_GE(hard_case.max_degree, 24u);
  EXPECT_GE(hard_case.stats.rounds, hard_case.max_degree);
}

TEST(Census, RespectsBandwidth) {
  const Graph g = gen::random_connected(80, 200, 5);
  const CensusResult r = run_two_hop_census(g);
  EXPECT_LE(r.stats.max_edge_bits, r.stats.bandwidth_bits);
}

TEST(Census, SingleNodeAndEdge) {
  EXPECT_EQ(run_two_hop_census(gen::path(1)).n2[0], 1u);
  const CensusResult r = run_two_hop_census(gen::path(2));
  EXPECT_EQ(r.n2[0], 2u);
  EXPECT_EQ(r.n2[1], 2u);
}

}  // namespace
}  // namespace dapsp::core
