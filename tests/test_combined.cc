// Corollary 1: the (x,3/2) diameter min-selector.
#include <gtest/gtest.h>

#include "core/combined.h"
#include "graph/generators.h"
#include "seq/properties.h"
#include "testing/suite.h"

namespace dapsp::core {
namespace {

TEST(CombinedDiameter, WithinRatioOnSuite) {
  for (const auto& [name, g] : testing::small_suite()) {
    if (g.num_nodes() < 3) continue;
    const CombinedDiameterResult r = run_combined_diameter_approx(g);
    const std::uint32_t diam = seq::diameter(g);
    EXPECT_GE(r.estimate, diam) << name;
    EXPECT_LE(r.estimate, 1.5 * diam + 1.0) << name;
  }
}

TEST(CombinedDiameter, PicksPrtOnShallowGraphs) {
  // Corollary 1's crossover: for D <= ~n^(1/4), D*sqrt(n) beats n/D + D.
  // dense_diameter2(64): D = 2, cost_prt ~ 2*8 = 16 < cost_ours ~ 48.
  const Graph g = gen::dense_diameter2(64);
  const CombinedDiameterResult r = run_combined_diameter_approx(g);
  EXPECT_EQ(r.arm, DiameterArm::kPrt);
}

TEST(CombinedDiameter, PicksOursOnDeepGraphs) {
  // On a path D ~ n >> n^(1/4): cost_ours ~ 8D ~ 950 beats
  // cost_prt ~ D*sqrt(n) ~ 1190.
  const Graph g = gen::path(120);
  const CombinedDiameterResult r = run_combined_diameter_approx(g);
  EXPECT_EQ(r.arm, DiameterArm::kOurs);
  const std::uint32_t diam = seq::diameter(g);
  EXPECT_GE(r.estimate, diam);
  EXPECT_LE(r.estimate, 1.5 * diam + 1.0);
}

TEST(CombinedDiameter, PrtArmTriggersInCrossover) {
  // Medium D and large n: D*sqrt(n) < n/D + 8D requires
  // D^2 sqrt(n) < n + 8 D^2, i.e. small D but not too small... construct
  // n = 400, D = 4: cost_ours = 100 + 32 = 132, cost_prt = 2*20 = 40.
  const Graph g = gen::path_of_cliques(2, 200);
  const CombinedDiameterResult r = run_combined_diameter_approx(g);
  EXPECT_EQ(r.arm, DiameterArm::kPrt);
  const std::uint32_t diam = seq::diameter(g);
  EXPECT_GE(r.estimate, diam);
  EXPECT_LE(r.estimate, 1.5 * diam + 1.0);
}

TEST(CombinedDiameter, MediumSuiteRatio) {
  for (const auto& [name, g] : testing::medium_suite()) {
    const CombinedDiameterResult r = run_combined_diameter_approx(g);
    const std::uint32_t diam = seq::diameter(g);
    EXPECT_GE(r.estimate, diam) << name;
    EXPECT_LE(r.estimate, 1.5 * diam + 1.0) << name;
  }
}

TEST(CombinedDiameter, ReportsProbe) {
  const Graph g = gen::grid(8, 8);
  const CombinedDiameterResult r = run_combined_diameter_approx(g);
  EXPECT_GE(r.d0, seq::diameter(g));
  EXPECT_LE(r.d0, 2 * seq::diameter(g));
}

}  // namespace
}  // namespace dapsp::core
