// k-dominating set construction (Lemma 10 substitute): domination, size
// bound floor(n/(k+1)) + 1, and O(D + k) rounds.
#include <gtest/gtest.h>

#include "core/kdom.h"
#include "graph/generators.h"
#include "seq/properties.h"
#include "testing/suite.h"

namespace dapsp::core {
namespace {

TEST(Kdom, DominatesOnSuite) {
  for (const auto& [name, g] : testing::small_suite()) {
    for (const std::uint32_t k : {0u, 1u, 2u, 5u}) {
      const KdomResult r = run_kdom(g, k);
      EXPECT_TRUE(seq::is_k_dominating(g, r.dom, k))
          << name << " k=" << k;
    }
  }
}

TEST(Kdom, SizeBound) {
  for (const auto& [name, g] : testing::small_suite()) {
    for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
      const KdomResult r = run_kdom(g, k);
      EXPECT_LE(r.dom.size(), g.num_nodes() / (k + 1) + 1)
          << name << " k=" << k;
      EXPECT_EQ(r.dom.size(), r.dom_size) << name << " k=" << k;
    }
  }
}

TEST(Kdom, ZeroKIsAllNodes) {
  const Graph g = gen::grid(4, 5);
  const KdomResult r = run_kdom(g, 0);
  EXPECT_EQ(r.dom.size(), g.num_nodes());
}

TEST(Kdom, PathStructure) {
  // On a path rooted at an end, residue classes are contiguous samples;
  // |DOM| must be about n/(k+1).
  const Graph g = gen::path(60);
  const KdomResult r = run_kdom(g, 5);
  EXPECT_LE(r.dom.size(), 60u / 6 + 1);
  EXPECT_GE(r.dom.size(), 60u / 6 - 1);
  EXPECT_TRUE(seq::is_k_dominating(g, r.dom, 5));
}

TEST(Kdom, RoundsLinearInDepthPlusK) {
  for (const auto& [name, g] : testing::medium_suite()) {
    for (const std::uint32_t k : {2u, 10u}) {
      const KdomResult r = run_kdom(g, k);
      // Tree build (~2 ecc) + count pipeline (~ecc + k) + two broadcasts.
      EXPECT_LE(r.stats.rounds, 8 * std::uint64_t{r.leader_ecc} + 2 * k + 32)
          << name << " k=" << k;
    }
  }
}

TEST(Kdom, LargeKGivesTinySet) {
  const Graph g = gen::path(100);
  const KdomResult r = run_kdom(g, 99);
  EXPECT_LE(r.dom.size(), 2u);
  EXPECT_TRUE(seq::is_k_dominating(g, r.dom, 99));
}

TEST(Kdom, RootAlwaysMember) {
  for (const auto& [name, g] : testing::small_suite()) {
    const KdomResult r = run_kdom(g, 3);
    ASSERT_FALSE(r.dom.empty()) << name;
    EXPECT_EQ(r.dom.front(), 0u) << name;  // node 0 always joins
  }
}

TEST(Kdom, Deterministic) {
  const Graph g = gen::random_connected(80, 60, 77);
  const KdomResult a = run_kdom(g, 4);
  const KdomResult b = run_kdom(g, 4);
  EXPECT_EQ(a.dom, b.dom);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

TEST(Kdom, SingleNode) {
  const KdomResult r = run_kdom(gen::path(1), 3);
  EXPECT_EQ(r.dom, std::vector<NodeId>{0});
}

TEST(Kdom, ResidueIsMinimumClass) {
  // On a star rooted at the hub: depth 0 = {hub}, depth 1 = leaves. With
  // k = 1, residue classes mod 2 have sizes {1, n-1}; class 0 must win.
  const Graph g = gen::star(20);
  const KdomResult r = run_kdom(g, 1);
  EXPECT_EQ(r.residue, 0u);
  EXPECT_EQ(r.dom, std::vector<NodeId>{0});
}

}  // namespace
}  // namespace dapsp::core
