// The CONGEST kernel: delivery semantics, bandwidth enforcement, stats,
// determinism, quiescence, and failure modes.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "congest/engine.h"
#include "graph/generators.h"

namespace dapsp::congest {
namespace {

// Sends one message with `fields` payload fields from node 0 to node 1 in
// round `when`, `count` times.
class SenderProcess final : public Process {
 public:
  SenderProcess(NodeId id, int count, std::uint8_t fields)
      : id_(id), count_(count), fields_(fields) {}

  void on_round(RoundCtx& ctx) override {
    for (const Received& r : ctx.inbox()) {
      received_.push_back(r.msg);
      from_.push_back(r.from_index);
      recv_round_ = ctx.round();
    }
    if (id_ == 0 && ctx.round() == 0) {
      for (int i = 0; i < count_; ++i) {
        Message m;
        m.kind = static_cast<std::uint8_t>(10 + i);
        m.num_fields = fields_;
        for (int f = 0; f < fields_; ++f) {
          m.f[static_cast<std::size_t>(f)] = static_cast<std::uint32_t>(f + 1);
        }
        ctx.send(0, m);
      }
      sent_ = true;
    }
    done_ = id_ != 0 || sent_;
  }

  bool done() const override { return done_; }

  std::vector<Message> received_;
  std::vector<std::uint32_t> from_;
  std::uint64_t recv_round_ = 0;

 private:
  NodeId id_;
  int count_;
  std::uint8_t fields_;
  bool sent_ = false;
  bool done_ = false;
};

TEST(Engine, DeliversNextRound) {
  const Graph g = gen::path(2);
  Engine e(g);
  e.init([](NodeId v) { return std::make_unique<SenderProcess>(v, 1, 2); });
  const RunStats stats = e.run();
  auto& p1 = e.process_as<SenderProcess>(1);
  ASSERT_EQ(p1.received_.size(), 1u);
  EXPECT_EQ(p1.recv_round_, 1u);  // sent in round 0, received in round 1
  EXPECT_EQ(p1.received_[0].kind, 10);
  EXPECT_EQ(p1.received_[0].f[0], 1u);
  EXPECT_EQ(p1.received_[0].f[1], 2u);
  EXPECT_EQ(p1.from_[0], 0u);  // node 0 is neighbor index 0 of node 1
  EXPECT_EQ(stats.messages, 1u);
}

TEST(Engine, BandwidthEnforced) {
  const Graph g = gen::path(2);
  Engine e(g);  // default budget: 4 ids
  // Three 2-field messages on one edge in one round exceed B.
  e.init([](NodeId v) { return std::make_unique<SenderProcess>(v, 3, 2); });
  EXPECT_THROW(e.run(), CongestionError);
}

TEST(Engine, TwoSmallMessagesFit) {
  const Graph g = gen::path(2);
  Engine e(g);
  e.init([](NodeId v) { return std::make_unique<SenderProcess>(v, 2, 1); });
  const RunStats stats = e.run();
  EXPECT_EQ(e.process_as<SenderProcess>(1).received_.size(), 2u);
  EXPECT_EQ(stats.max_edge_messages, 2u);
  EXPECT_LE(stats.max_edge_bits, stats.bandwidth_bits);
}

TEST(Engine, BandwidthDisabled) {
  const Graph g = gen::path(2);
  EngineConfig cfg;
  cfg.enforce_bandwidth = false;
  Engine e(g, cfg);
  e.init([](NodeId v) { return std::make_unique<SenderProcess>(v, 8, 4); });
  const RunStats stats = e.run();
  EXPECT_EQ(e.process_as<SenderProcess>(1).received_.size(), 8u);
  EXPECT_GT(stats.max_edge_bits, stats.bandwidth_bits);
}

TEST(Engine, FieldWidthEnforced) {
  const Graph g = gen::path(2);

  class BadField final : public Process {
   public:
    explicit BadField(NodeId id) : id_(id) {}
    void on_round(RoundCtx& ctx) override {
      if (id_ == 0 && ctx.round() == 0) {
        ctx.send(0, Message::make(1, 0xffffffffu));  // exceeds value width
      }
      done_ = true;
    }
    bool done() const override { return done_; }

   private:
    NodeId id_;
    bool done_ = false;
  };

  Engine e(g);
  e.init([](NodeId v) { return std::make_unique<BadField>(v); });
  EXPECT_THROW(e.run(), CongestionError);
}

TEST(Engine, RoundLimit) {
  const Graph g = gen::path(2);

  // Ping-pong forever.
  class Chatter final : public Process {
   public:
    explicit Chatter(NodeId id) : id_(id) {}
    void on_round(RoundCtx& ctx) override {
      if (id_ == 0 || !ctx.inbox().empty()) ctx.send(0, Message::make(1));
    }
    bool done() const override { return false; }

   private:
    NodeId id_;
  };

  EngineConfig cfg;
  cfg.max_rounds = 100;
  Engine e(g, cfg);
  e.init([](NodeId v) { return std::make_unique<Chatter>(v); });
  EXPECT_THROW(e.run(), RoundLimitError);
}

TEST(Engine, RunRoundsExact) {
  const Graph g = gen::path(3);
  class Idle final : public Process {
   public:
    void on_round(RoundCtx&) override { ++rounds_seen_; }
    bool done() const override { return true; }
    int rounds_seen_ = 0;
  };
  Engine e(g);
  e.init([](NodeId) { return std::make_unique<Idle>(); });
  const RunStats stats = e.run_rounds(5);
  EXPECT_EQ(stats.rounds, 5u);
  EXPECT_EQ(e.process_as<Idle>(0).rounds_seen_, 5);
}

TEST(Engine, QuiescenceStopsImmediately) {
  const Graph g = gen::path(3);
  class Idle final : public Process {
   public:
    void on_round(RoundCtx&) override {}
    bool done() const override { return true; }
  };
  Engine e(g);
  e.init([](NodeId) { return std::make_unique<Idle>(); });
  const RunStats stats = e.run();
  EXPECT_EQ(stats.rounds, 0u);
}

TEST(Engine, SendToBadNeighborThrows) {
  const Graph g = gen::path(2);
  class Bad final : public Process {
   public:
    explicit Bad(NodeId id) : id_(id) {}
    void on_round(RoundCtx& ctx) override {
      if (id_ == 0) ctx.send(5, Message::make(1));
    }
    bool done() const override { return false; }

   private:
    NodeId id_;
  };
  Engine e(g);
  e.init([](NodeId v) { return std::make_unique<Bad>(v); });
  EXPECT_THROW(e.run(), std::out_of_range);
}

TEST(Engine, ValueBitsScaleWithN) {
  const Graph small = gen::path(8);
  const Graph big = gen::path(1024);
  Engine es(small), eb(big);
  EXPECT_LT(es.value_bits(), eb.value_bits());
  EXPECT_EQ(eb.value_bits(), 12u);  // bits_for(2048)
  EXPECT_EQ(eb.bandwidth_bits(), 8u + 4 * 12u);
}

TEST(Engine, StatsCountBits) {
  const Graph g = gen::path(2);
  Engine e(g);
  e.init([](NodeId v) { return std::make_unique<SenderProcess>(v, 1, 2); });
  const RunStats stats = e.run();
  EXPECT_EQ(stats.total_bits, 8u + 2 * e.value_bits());
  EXPECT_EQ(stats.max_edge_bits, stats.total_bits);
}

TEST(Engine, AccumulateStats) {
  RunStats a{.rounds = 10,
             .messages = 5,
             .total_bits = 100,
             .max_edge_bits = 30,
             .max_edge_messages = 2,
             .max_node_bits = 90,
             .bandwidth_bits = 40};
  const RunStats b{.rounds = 20,
                   .messages = 7,
                   .total_bits = 50,
                   .max_edge_bits = 60,
                   .max_edge_messages = 1,
                   .max_node_bits = 80,
                   .bandwidth_bits = 40};
  accumulate(a, b);
  EXPECT_EQ(a.rounds, 30u);
  EXPECT_EQ(a.messages, 12u);
  EXPECT_EQ(a.total_bits, 150u);
  EXPECT_EQ(a.max_edge_bits, 60u);
  EXPECT_EQ(a.max_edge_messages, 2u);
  EXPECT_EQ(a.max_node_bits, 90u);
  EXPECT_EQ(a.bandwidth_bits, 40u);
}

TEST(Engine, AccumulateRejectsMismatchedBudgets) {
  // Phases enforced under different budgets B have no single honest
  // bandwidth_bits value; silently max-ing them misreports the enforcement.
  RunStats a{.bandwidth_bits = 40};
  const RunStats b{.bandwidth_bits = 48};
  EXPECT_THROW(accumulate(a, b), std::invalid_argument);
  EXPECT_EQ(a.bandwidth_bits, 40u);  // rejected before any mutation

  // A zero side (freshly default-constructed accumulator) adopts the
  // other's budget, in either direction.
  RunStats fresh{};
  accumulate(fresh, a);
  EXPECT_EQ(fresh.bandwidth_bits, 40u);
  RunStats into{.bandwidth_bits = 48};
  accumulate(into, RunStats{});
  EXPECT_EQ(into.bandwidth_bits, 48u);
}

TEST(Engine, AccumulateStatsSumsFaultCounters) {
  RunStats a{.messages_dropped = 3, .messages_delayed = 1, .nodes_crashed = 1};
  const RunStats b{.messages_dropped = 2,
                   .messages_duplicated = 4,
                   .nodes_crashed = 2};
  accumulate(a, b);
  EXPECT_EQ(a.messages_dropped, 5u);
  EXPECT_EQ(a.messages_delayed, 1u);
  EXPECT_EQ(a.messages_duplicated, 4u);
  EXPECT_EQ(a.nodes_crashed, 3u);
}

TEST(Engine, StatsDebugString) {
  RunStats s{.rounds = 12, .messages = 34, .total_bits = 560};
  std::string text = s.debug_string();
  EXPECT_NE(text.find("rounds=12"), std::string::npos);
  EXPECT_NE(text.find("messages=34"), std::string::npos);
  // Fault counters only appear when something happened.
  EXPECT_EQ(text.find("dropped"), std::string::npos);
  s.messages_dropped = 2;
  text = s.debug_string();
  EXPECT_NE(text.find("dropped=2"), std::string::npos);
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), text);
}

TEST(Engine, PerNodeLoadTracked) {
  // A star hub sending to all leaves in one round accumulates deg * message
  // cost on the node counter while each edge sees only one message.
  const Graph g = gen::star(9);
  class HubBlast final : public Process {
   public:
    explicit HubBlast(NodeId id) : id_(id) {}
    void on_round(RoundCtx& ctx) override {
      if (id_ == 0 && ctx.round() == 0) ctx.send_all(Message::make(1, 3));
      done_ = true;
    }
    bool done() const override { return done_; }

   private:
    NodeId id_;
    bool done_ = false;
  };
  Engine e(g);
  e.init([](NodeId v) { return std::make_unique<HubBlast>(v); });
  const RunStats s = e.run();
  const std::uint64_t per_msg = 8 + e.value_bits();
  EXPECT_EQ(s.max_node_bits, 8 * per_msg);
  EXPECT_EQ(s.max_edge_bits, per_msg);
}

TEST(Engine, WireInfinityFitsFieldWidth) {
  for (NodeId n : {2u, 8u, 100u, 1000u}) {
    const Graph g = gen::path(n);
    Engine e(g);
    EXPECT_LT(std::uint64_t{wire_infinity(std::max<NodeId>(n, 8))} >>
                  e.value_bits(),
              1u);
  }
}

TEST(Engine, DeterministicAcrossRuns) {
  const Graph g = gen::random_connected(20, 15, 3);
  auto run_once = [&g] {
    Engine e(g);
    e.init([](NodeId v) { return std::make_unique<SenderProcess>(v, 1, 1); });
    return e.run();
  };
  const RunStats a = run_once();
  const RunStats b = run_once();
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.total_bits, b.total_bits);
}

TEST(Message, DebugString) {
  const Message m = Message::make(3, 7, 9);
  const std::string s = m.debug_string();
  EXPECT_NE(s.find("kind=3"), std::string::npos);
  EXPECT_NE(s.find("7, 9"), std::string::npos);
}

TEST(Message, BitCost) {
  EXPECT_EQ(Message::make(1).bit_cost(10), 8u);
  EXPECT_EQ(Message::make(1, 2).bit_cost(10), 18u);
  EXPECT_EQ(Message::make(1, 2, 3, 4, 5).bit_cost(10), 48u);
}

}  // namespace
}  // namespace dapsp::congest
