// Extensions built from the paper's machinery: leader election (Section 2's
// "node with ID 1" assumption made concrete) and distance labels
// (Section 3.2's APASP connection).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/distance_labels.h"
#include "core/leader_election.h"
#include "core/pebble_apsp.h"
#include "graph/generators.h"
#include "seq/apsp.h"
#include "seq/properties.h"
#include "testing/suite.h"
#include "util/rng.h"

namespace dapsp::core {
namespace {

std::vector<std::uint32_t> shuffled_labels(NodeId n, std::uint64_t seed) {
  std::vector<std::uint32_t> labels(n);
  std::iota(labels.begin(), labels.end(), 1u);  // labels 1..n, like the paper
  Rng rng(seed);
  shuffle(labels, rng);
  return labels;
}

TEST(LeaderElection, FindsMinimumLabelEverywhere) {
  for (const auto& [name, g] : testing::small_suite()) {
    const auto labels = shuffled_labels(g.num_nodes(), 42);
    const LeaderElectionResult r = run_leader_election(g, labels);
    EXPECT_EQ(r.leader_label, 1u) << name;
    EXPECT_EQ(labels[r.leader], 1u) << name;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(r.believed_label[v], 1u) << name << " node " << v;
    }
  }
}

TEST(LeaderElection, DiameterHintShortensRun) {
  const Graph g = gen::grid(10, 10);
  const auto labels = shuffled_labels(100, 7);
  const auto full = run_leader_election(g, labels);
  LeaderElectionOptions opt;
  opt.diameter_hint = 18;  // exact diameter of the 10x10 grid
  const auto hinted = run_leader_election(g, labels, opt);
  EXPECT_EQ(hinted.leader, full.leader);
  EXPECT_LT(hinted.stats.rounds, full.stats.rounds);
  for (const std::uint32_t b : hinted.believed_label) EXPECT_EQ(b, 1u);
}

TEST(LeaderElection, MessageCountsReflectImprovementCascades) {
  // Min-flood re-announces on every improvement. A sorted path is the worst
  // case (node i improves ~i times, Theta(n^2) messages); a star with the
  // minimum at the hub is the best case (every leaf improves exactly once).
  const Graph path = gen::path(50);
  std::vector<std::uint32_t> sorted(50);
  std::iota(sorted.begin(), sorted.end(), 1u);
  const auto worst = run_leader_election(path, sorted);
  EXPECT_GE(worst.stats.messages, 50u * 20u);

  const Graph star = gen::star(50);
  const auto best = run_leader_election(star, sorted);  // hub holds label 1
  EXPECT_LE(best.stats.messages, 4u * 50u);
  EXPECT_EQ(best.leader, 0u);
}

TEST(LeaderElection, LabelCountMismatchThrows) {
  const Graph g = gen::path(4);
  const std::vector<std::uint32_t> labels{1, 2};
  EXPECT_THROW(run_leader_election(g, labels), std::invalid_argument);
}

TEST(LeaderElection, RelabelLeaderFirstIsConsistent) {
  const Graph g = gen::random_connected(30, 20, 3);
  std::vector<NodeId> perm;
  const Graph h = relabel_leader_first(g, 17, &perm);
  EXPECT_EQ(perm[17], 0u);
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(h.has_edge(perm[e.u], perm[e.v]));
  }
  // Permutation is a bijection.
  std::vector<NodeId> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId v = 0; v < 30; ++v) EXPECT_EQ(sorted[v], v);
}

TEST(LeaderElection, EndToEndApspWithoutAnchoredLeader) {
  // The full Section 2 reduction: arbitrary labels -> elect -> rename the
  // winner to node 0 -> run Algorithm 1.
  const Graph g = gen::random_connected(40, 30, 9);
  const auto labels = shuffled_labels(40, 13);
  const auto election = run_leader_election(g, labels);
  std::vector<NodeId> perm;
  const Graph anchored = relabel_leader_first(g, election.leader, &perm);
  const ApspResult apsp = run_pebble_apsp(anchored);
  const DistanceMatrix want = seq::apsp(g);
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v = 0; v < 40; ++v) {
      EXPECT_EQ(apsp.dist.at(perm[u], perm[v]), want.at(u, v));
    }
  }
}

// ---- Distance labels (APASP) ----------------------------------------------

TEST(DistanceLabels, AdditiveGuaranteeOnSuite) {
  for (const auto& [name, g] : testing::small_suite()) {
    for (const std::uint32_t k : {1u, 3u}) {
      const DistanceLabeling labels = build_distance_labels(g, k);
      const DistanceMatrix want = seq::apsp(g);
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          const std::uint32_t est = labels.estimate(u, v);
          EXPECT_GE(est, want.at(u, v)) << name << " k=" << k;
          EXPECT_LE(est, want.at(u, v) + 2 * k) << name << " k=" << k;
        }
      }
    }
  }
}

TEST(DistanceLabels, ZeroSlackIsExact) {
  const Graph g = gen::grid(5, 6);
  const DistanceLabeling labels = build_distance_labels(g, 0);
  const DistanceMatrix want = seq::apsp(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(labels.estimate(u, v), want.at(u, v));
    }
  }
}

TEST(DistanceLabels, LabelSizeBound) {
  const Graph g = gen::path(200);
  for (const std::uint32_t k : {1u, 4u, 9u, 19u}) {
    const DistanceLabeling labels = build_distance_labels(g, k);
    EXPECT_LE(labels.label_entries(), 200u / (k + 1) + 1) << k;
  }
}

TEST(DistanceLabels, ConstructionCheaperThanApspWhenNdominatesD) {
  // n >> D is where the O(n/k + D + k) construction beats Theta(n) APSP.
  const Graph g = gen::path_of_cliques(12, 50);  // n = 600, D ~ 35
  const DistanceLabeling labels = build_distance_labels(g, 8);
  const ApspResult exact = run_pebble_apsp(g);
  EXPECT_LT(labels.stats().rounds, exact.stats.rounds / 2);
}

TEST(DistanceLabels, SelfDistanceZero) {
  const Graph g = gen::cycle(12);
  const DistanceLabeling labels = build_distance_labels(g, 2);
  for (NodeId v = 0; v < 12; ++v) EXPECT_EQ(labels.estimate(v, v), 0u);
}

}  // namespace
}  // namespace dapsp::core
