// Self-healing repair of degraded APSP runs (core/repair.h): suspect
// detection (coverage + failed certificates), per-component S-SP re-runs,
// oracle-exact merged tables, vacuous certification of crashed-source rows,
// the O(|S| + D) repair round bound, and the 50-campaign acceptance sweep
// (crashes + drops + payload corruption -> all-certified repairs).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "congest/engine.h"
#include "congest/faults.h"
#include "congest/reliable.h"
#include "core/certify.h"
#include "core/pebble_apsp.h"
#include "core/repair.h"
#include "graph/generators.h"
#include "seq/apsp.h"
#include "seq/bfs.h"

namespace dapsp::core {
namespace {

Graph surviving_subgraph(const Graph& g,
                         const std::vector<std::uint8_t>& survived) {
  std::vector<Edge> edges;
  for (const Edge& e : g.edges()) {
    if (survived[e.u] != 0 && survived[e.v] != 0) edges.push_back(e);
  }
  return Graph(g.num_nodes(), edges);
}

// Asserts the repaired tables are exact: every surviving node's distance to
// every source equals the sequential oracle on the surviving subgraph
// (infinite for dead sources), and repaired next-hop pointers descend.
void check_repaired_exact(const Graph& g, const ApspResult& r,
                          const RepairReport& report) {
  const NodeId n = g.num_nodes();
  const Graph sub = surviving_subgraph(g, r.survived);
  for (NodeId s = 0; s < n; ++s) {
    const auto oracle = seq::bfs(sub, s);
    for (NodeId v = 0; v < n; ++v) {
      if (r.survived[v] == 0) continue;
      const std::uint32_t want =
          r.survived[s] != 0 ? oracle.dist[v] : (v == s ? 0u : kInfDist);
      ASSERT_EQ(r.dist.at(v, s), want)
          << g.summary() << " node " << v << " source " << s;
    }
  }
  // Next-hop pointers of the repaired rows route along shortest paths of the
  // surviving subgraph. (Untouched certified rows keep their original
  // pointers, which may still name a dead neighbor of an equal-length
  // pre-crash path — distances, not routes, are what their certificate
  // guarantees.)
  for (const NodeId s : report.suspect_sources) {
    for (NodeId v = 0; v < n; ++v) {
      if (r.survived[v] == 0) continue;
      const NodeId hop = r.next_hop[v][s];
      const std::uint32_t d = r.dist.at(v, s);
      if (v == s || d == kInfDist) {
        EXPECT_EQ(hop, kNoNextHop) << " node " << v << " source " << s;
        continue;
      }
      ASSERT_NE(hop, kNoNextHop) << " node " << v << " source " << s;
      ASSERT_LT(hop, n);
      EXPECT_NE(r.survived[hop], 0u);
      EXPECT_TRUE(sub.has_edge(v, hop));
      EXPECT_EQ(r.dist.at(hop, s), d - 1)
          << " node " << v << " source " << s << " via " << hop;
    }
  }
}

// ---------------------------------------------------------------------------
// Basics

TEST(Repair, CompletedResultNeedsNoRepair) {
  const Graph g = gen::grid(3, 4);
  ApspResult r = run_pebble_apsp(g);
  ASSERT_EQ(r.status, congest::RunStatus::kCompleted);
  const DistanceMatrix before = r.dist;
  const RepairReport report = repair_apsp(g, r);
  EXPECT_EQ(report.rows_repaired, 0u);
  EXPECT_TRUE(report.suspect_sources.empty());
  EXPECT_EQ(report.repair_rounds, 0u);
  EXPECT_TRUE(report.bound_ok);
  EXPECT_TRUE(report.all_certified());
  EXPECT_TRUE(r.dist == before);  // nothing rewritten
  EXPECT_EQ(report.coverage_before.count(
                static_cast<std::uint64_t>(RowCoverage::kComplete)),
            g.num_nodes());
}

TEST(Repair, RejectsMismatchedTables) {
  const Graph g = gen::path(4);
  ApspResult r = run_pebble_apsp(gen::path(3));
  EXPECT_THROW(repair_apsp(g, r), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Synthetic degraded tables: the repair logic without a degraded engine run

// A hand-built "harvest": full pre-crash oracle tables (stale after the
// crash), with the given nodes marked dead.
ApspResult stale_harvest(const Graph& g, std::vector<NodeId> dead) {
  const NodeId n = g.num_nodes();
  ApspResult r;
  r.dist = seq::apsp(g);
  r.next_hop.assign(n, std::vector<NodeId>(n, kNoNextHop));
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId s = 0; s < n; ++s) {
      if (v == s) continue;
      for (const NodeId w : g.neighbors(v)) {
        if (r.dist.at(w, s) == r.dist.at(v, s) - 1) {
          r.next_hop[v][s] = w;
          break;
        }
      }
    }
  }
  r.status = congest::RunStatus::kDegraded;
  r.survived.assign(n, 1);
  for (const NodeId v : dead) r.survived[v] = 0;
  return r;
}

TEST(Repair, StaleRelayRowsAreDetectedAndRecomputed) {
  // Ring of 6, node 1 dead. Every row is coverage-complete, but exactly the
  // rows of the dead node's ring neighbors (0 and 2) are stale: their
  // pre-crash distances used the cut edge, and their minimum stale entries
  // have no surviving witness. The pre-repair certificate must flag exactly
  // those two, the other survivor rows are already exact on the cut ring.
  const Graph g = gen::cycle(6);
  ApspResult r = stale_harvest(g, {1});
  const RepairReport report = repair_apsp(g, r);
  EXPECT_EQ(report.suspect_sources, (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(report.rows_repaired, 2u);
  EXPECT_GT(report.repair_rounds, 0u);
  EXPECT_TRUE(report.bound_ok);
  EXPECT_TRUE(report.all_certified());
  check_repaired_exact(g, r, report);
  // Before: six coverage-complete (two of them stale) rows; after: the dead
  // source's zeroed all-infinite row reads "lost" (nothing reaches it), the
  // five survivor rows stay complete — and now exact.
  EXPECT_EQ(report.coverage_before.count(
                static_cast<std::uint64_t>(RowCoverage::kComplete)),
            6u);
  EXPECT_EQ(report.coverage_after.count(
                static_cast<std::uint64_t>(RowCoverage::kComplete)),
            5u);
  EXPECT_EQ(report.coverage_after.count(
                static_cast<std::uint64_t>(RowCoverage::kLost)),
            1u);
}

TEST(Repair, RepairTwiceIsANoOp) {
  // Idempotency: after a certified repair, a second detection-mode repair
  // finds no suspects and rewrites nothing — exact-but-partial rows (the
  // all-infinite entries across the cut) pass the certificate instead of
  // being blanket-suspected again.
  const Graph g = gen::cycle(6);
  ApspResult r = stale_harvest(g, {1});
  const RepairReport first = repair_apsp(g, r);
  ASSERT_TRUE(first.all_certified());
  ASSERT_GT(first.rows_repaired, 0u);
  const DistanceMatrix settled = r.dist;

  const RepairReport second = repair_apsp(g, r);
  EXPECT_TRUE(second.all_certified());
  EXPECT_TRUE(second.suspect_sources.empty());
  EXPECT_EQ(second.rows_repaired, 0u);
  EXPECT_EQ(second.repair_rounds, 0u);
  EXPECT_TRUE(second.bound_ok);
  EXPECT_TRUE(r.dist == settled);
}

TEST(Repair, ExternalSuspectsSkipDetection) {
  // The caller (the service's dirty-region analyzer) names the suspects:
  // repair recomputes exactly those rows, certifies only them when asked,
  // and the result is oracle-exact for the named rows.
  const Graph g = gen::cycle(6);
  ApspResult r = stale_harvest(g, {1});
  RepairOptions opts;
  opts.suspects = std::vector<NodeId>{0, 2};
  opts.certify_all = false;
  const RepairReport report = repair_apsp(g, r, opts);
  EXPECT_EQ(report.suspect_sources, (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(report.rows_repaired, 2u);
  EXPECT_TRUE(report.all_certified());
  EXPECT_TRUE(report.bound_ok);
  check_repaired_exact(g, r, report);
}

TEST(Repair, EmptyExternalSuspectSetIsZeroCost) {
  // A clean epoch: the analyzer found nothing dirty. With certify_all off
  // the repair returns immediately — no engine runs at all.
  const Graph g = gen::grid(3, 4);
  ApspResult r = run_pebble_apsp(g);
  const DistanceMatrix before = r.dist;
  RepairOptions opts;
  opts.suspects = std::vector<NodeId>{};
  opts.certify_all = false;
  const RepairReport report = repair_apsp(g, r, opts);
  EXPECT_EQ(report.rows_repaired, 0u);
  EXPECT_EQ(report.repair_rounds, 0u);
  EXPECT_EQ(report.stats.rounds, 0u);
  EXPECT_EQ(report.stats.messages, 0u);
  EXPECT_EQ(report.stats.repairs_attempted, 1u);
  EXPECT_TRUE(report.all_certified());
  EXPECT_TRUE(r.dist == before);
  EXPECT_EQ(report.coverage_after.count(
                static_cast<std::uint64_t>(RowCoverage::kComplete)),
            g.num_nodes());
}

TEST(Repair, RejectsBadExternalSuspects) {
  const Graph g = gen::path(4);
  ApspResult r = stale_harvest(g, {1});
  RepairOptions opts;
  opts.suspects = std::vector<NodeId>{7};  // out of range
  EXPECT_THROW(repair_apsp(g, r, opts), std::invalid_argument);
  opts.suspects = std::vector<NodeId>{1};  // dead source
  EXPECT_THROW(repair_apsp(g, r, opts), std::invalid_argument);
}

TEST(Repair, DisconnectedSurvivorComponentsRepairIndependently) {
  // Path 0-1-2-3, node 1 dead: survivors split into {0} and {2, 3}. The
  // singleton component repairs locally (no protocol run); cross-component
  // entries become infinite; the dead source's row zeroes to all-infinite.
  const Graph g = gen::path(4);
  ApspResult r = stale_harvest(g, {1});
  const RepairReport report = repair_apsp(g, r);
  EXPECT_TRUE(report.all_certified());
  EXPECT_TRUE(report.bound_ok);
  check_repaired_exact(g, r, report);
  EXPECT_EQ(r.dist.at(0, 2), kInfDist);
  EXPECT_EQ(r.dist.at(2, 0), kInfDist);
  EXPECT_EQ(r.dist.at(2, 1), kInfDist);  // dead source
  EXPECT_EQ(r.dist.at(3, 2), 1u);        // intact within the component
  EXPECT_EQ(r.next_hop[3][2], 2u);
}

TEST(Repair, AllNodesCrashedDegeneratesGracefully) {
  const Graph g = gen::path(3);
  ApspResult r = stale_harvest(g, {0, 1, 2});
  const RepairReport report = repair_apsp(g, r);
  EXPECT_EQ(report.rows_repaired, 0u);
  EXPECT_EQ(report.repair_rounds, 0u);
  EXPECT_TRUE(report.all_certified());  // vacuously: nobody left to judge
}

TEST(Repair, DebugStringNamesTheHeadlineNumbers) {
  const Graph g = gen::cycle(6);
  ApspResult r = stale_harvest(g, {1});
  const RepairReport report = repair_apsp(g, r);
  const std::string s = report.debug_string();
  EXPECT_NE(s.find("rows=2"), std::string::npos) << s;
  EXPECT_NE(s.find("certified=6/6"), std::string::npos) << s;
  EXPECT_EQ(s.find("BOUND-EXCEEDED"), std::string::npos) << s;
}

// ---------------------------------------------------------------------------
// End-to-end: repair of genuinely degraded engine runs

TEST(Repair, RepairsCrashDegradedWrappedRun) {
  const Graph g = gen::grid(3, 4);
  const NodeId n = g.num_nodes();

  core::ApspOptions base;
  base.engine.max_rounds = 500000;
  congest::apply_reliable(base.engine);
  const auto clean = run_pebble_apsp(g, base);
  ASSERT_EQ(clean.status, congest::RunStatus::kCompleted);

  core::ApspOptions opt;
  opt.engine.max_rounds = 500000;
  opt.engine.faults = congest::FaultPlan{};
  opt.engine.faults->crashes.push_back({n / 2, clean.stats.rounds / 2});
  congest::apply_reliable(opt.engine);
  ApspResult r = run_pebble_apsp(g, opt);
  ASSERT_EQ(r.status, congest::RunStatus::kDegraded);

  RepairOptions ropt;
  ropt.engine = opt.engine;  // faults and wrapper are stripped internally
  const RepairReport report = repair_apsp(g, r, ropt);
  EXPECT_TRUE(report.all_certified()) << report.debug_string();
  EXPECT_TRUE(report.bound_ok) << report.debug_string();
  EXPECT_LE(report.repair_rounds, report.round_bound);
  check_repaired_exact(g, r, report);
  // The repair left the run's history intact.
  EXPECT_EQ(r.status, congest::RunStatus::kDegraded);
  EXPECT_EQ(r.survived[n / 2], 0u);
  // coverage was refreshed to the repaired picture.
  const auto recount = classify_coverage(
      r.survived, [&] {
        std::vector<NodeId> all(n);
        for (NodeId v = 0; v < n; ++v) all[v] = v;
        return all;
      }(),
      [&](NodeId v, NodeId s) { return r.dist.at(v, s); });
  EXPECT_EQ(recount, r.coverage);
}

// ---------------------------------------------------------------------------
// The acceptance sweep: 50 seeded chaos campaigns. Crashes plus message
// drops plus payload corruption (corrupt_prob >= 0.2); every campaign must
// end in an all-certified repair within the O(|S_missing| + D) round bound.

struct Campaign {
  Graph graph;
  congest::FaultPlan plan;
};

Campaign make_campaign(std::uint64_t i) {
  Campaign c;
  switch (i % 4) {
    case 0: c.graph = gen::path(8 + i % 5); break;
    case 1: c.graph = gen::grid(3, 3 + i % 3); break;
    case 2: c.graph = gen::cycle(9 + i % 6); break;
    default: c.graph = gen::random_connected(12 + i % 6, 14, 100 + i); break;
  }
  const NodeId n = c.graph.num_nodes();
  c.plan.seed = 5000 + i;
  c.plan.drop_prob = 0.1;
  c.plan.duplicate_prob = 0.05;
  c.plan.corrupt_prob = 0.2 + 0.01 * static_cast<double>(i % 10);
  c.plan.crashes.push_back(
      {static_cast<NodeId>((3 + 7 * i) % n), 40 + 3 * (i % 20)});
  if (i % 3 == 0) {
    const NodeId second = static_cast<NodeId>((5 + 11 * i) % n);
    if (second != c.plan.crashes[0].v) {
      c.plan.crashes.push_back({second, 60 + 2 * (i % 25)});
    }
  }
  return c;
}

TEST(Repair, FiftyChaosCampaignsAllRepairCertifiedWithinBound) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    const Campaign c = make_campaign(i);
    core::ApspOptions opt;
    opt.engine.max_rounds = 1000000;
    opt.engine.faults = c.plan;
    congest::apply_reliable(opt.engine);
    ApspResult r = run_pebble_apsp(c.graph, opt);
    ASSERT_EQ(r.status, congest::RunStatus::kDegraded)
        << "campaign " << i << " " << c.graph.summary();
    EXPECT_GT(r.stats.messages_corrupted, 0u) << "campaign " << i;

    const RepairReport report = repair_apsp(c.graph, r);
    EXPECT_TRUE(report.all_certified())
        << "campaign " << i << " " << c.graph.summary() << ": "
        << report.debug_string();
    EXPECT_TRUE(report.bound_ok)
        << "campaign " << i << ": " << report.debug_string();
    EXPECT_LE(report.repair_rounds, report.round_bound);
    check_repaired_exact(c.graph, r, report);
  }
}

}  // namespace
}  // namespace dapsp::core
