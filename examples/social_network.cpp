// Social-network scenario (Section 3.5): centers identify "celebrities",
// peripheral vertices help spam detection. Exact computation needs Theta(n)
// rounds; the paper's Theorem 4 gives a (x,1+eps)-approximation in
// O(n/D + D) — we run both on a synthetic community graph and compare.
//
//   $ ./social_network
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/apsp_applications.h"
#include "core/ecc_approx.h"
#include "graph/graph.h"
#include "util/rng.h"

using namespace dapsp;

namespace {

// Communities of friends (dense blobs) connected by a few "influencer"
// accounts, plus stray accounts following a single victim each (spam bots).
Graph community_graph(NodeId communities, NodeId size, NodeId bots,
                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  const NodeId members = communities * size;
  for (NodeId c = 0; c < communities; ++c) {
    const NodeId base = c * size;
    for (NodeId i = 0; i < size; ++i) {
      for (NodeId j = i + 1; j < size; ++j) {
        if (rng.chance(0.5)) edges.push_back({base + i, base + j});
      }
      // keep each community connected
      if (i > 0) edges.push_back({base, base + i});
    }
    if (c > 0) {
      // influencers: first member links to the previous community
      edges.push_back({c * size, (c - 1) * size});
    }
  }
  for (NodeId b = 0; b < bots; ++b) {
    const auto victim = static_cast<NodeId>(rng.below(members));
    edges.push_back({members + b, victim});
  }
  return Graph(members + bots, edges);
}

}  // namespace

int main() {
  const Graph g = community_graph(6, 30, 12, 11);
  std::printf("social graph: %s (6 communities x 30, 12 bot accounts)\n\n",
              g.summary().c_str());

  // Exact analysis (Lemmas 2, 5, 6): Theta(n) rounds.
  const auto ecc = core::distributed_eccentricities(g);
  const auto center = core::distributed_center(g);
  const auto periphery = core::distributed_peripheral(g);

  std::printf("exact (Theta(n) rounds = %llu):\n",
              static_cast<unsigned long long>(center.stats.rounds));
  std::printf("  celebrities (center): ");
  for (const NodeId v : center.members) std::printf("%u ", v);
  std::printf("\n  spam suspects (peripheral): ");
  for (const NodeId v : periphery.members) std::printf("%u ", v);
  std::printf("\n\n");

  // Approximate analysis (Theorem 4): O(n/D + D) rounds, supersets that are
  // still small.
  const auto approx = core::run_ecc_approx(g, {.epsilon = 0.5});
  std::printf("approx eps=0.5 (O(n/D+D) rounds = %llu, slack k = %u):\n",
              static_cast<unsigned long long>(approx.stats.rounds), approx.k);
  std::printf("  celebrity candidates: %zu nodes (contains all %zu true)\n",
              approx.center_approx.size(), center.members.size());
  std::printf("  spam candidates:      %zu nodes (contains all %zu true)\n",
              approx.peripheral_approx.size(), periphery.members.size());

  // Sanity: the bot accounts (ids >= 180) should dominate the suspect list.
  const auto bots_flagged = static_cast<std::size_t>(std::count_if(
      periphery.members.begin(), periphery.members.end(),
      [](NodeId v) { return v >= 180; }));
  std::printf("\n%zu of %zu exact suspects are actual bots.\n", bots_flagged,
              periphery.members.size());
  return 0;
}
