// Network-monitoring scenario: a operator wants to watch the diameter (worst
// case latency) and girth (shortest redundancy loop) of a live topology, but
// cannot afford the full Theta(n) APSP protocol every time. The paper's
// toolbox offers a cost/accuracy ladder:
//
//   (x,2)   diameter in Theta(D)  (Remark 1: one BFS)
//   (x,1.5) diameter in O(n^{3/4} + D) (Corollary 1 selector)
//   (x,1+e) diameter in O(n/D + D)  (Corollary 4)
//   exact   diameter in Theta(n)  (Lemma 3)
//
// and similarly for the girth (Lemma 7 / Theorem 5). This example walks the
// ladder on one topology and prints what each step buys.
//
//   $ ./network_monitor
#include <cstdio>
#include <vector>

#include "congest/reliable.h"
#include "congest/trace.h"
#include "core/apsp_applications.h"
#include "core/certify.h"
#include "core/primitives/bfs_process.h"
#include "core/pebble_apsp.h"
#include "core/combined.h"
#include "core/repair.h"
#include "core/ecc_approx.h"
#include "core/girth.h"
#include "core/girth_approx.h"
#include "graph/generators.h"

using namespace dapsp;

int main() {
  // A metro ring with chord shortcuts and access chains.
  const Graph g = gen::cycle_with_chords(420, 24, 2026);
  std::printf("monitored topology: %s\n\n", g.summary().c_str());

  std::printf("%-34s %10s %10s %8s\n", "method", "estimate", "rounds",
              "ratio<=");
  const auto two = core::distributed_diameter_2approx(g);
  std::printf("%-34s %10u %10llu %8s\n", "diameter (x,2), Remark 1", two.value,
              static_cast<unsigned long long>(two.stats.rounds), "2.0");

  const auto c1 = core::run_combined_diameter_approx(g);
  std::printf("%-34s %10u %10llu %8s\n", "diameter (x,1.5), Corollary 1",
              c1.estimate, static_cast<unsigned long long>(c1.stats.rounds),
              "1.5");

  const auto apx = core::run_ecc_approx(g, {.epsilon = 0.25});
  std::printf("%-34s %10u %10llu %8s\n", "diameter (x,1.25), Corollary 4",
              apx.diameter_estimate,
              static_cast<unsigned long long>(apx.stats.rounds), "1.25");

  const auto exact = core::distributed_diameter(g);
  std::printf("%-34s %10u %10llu %8s\n", "diameter exact, Lemma 3",
              exact.value, static_cast<unsigned long long>(exact.stats.rounds),
              "1.0");

  std::printf("\n");
  const auto gapx = core::run_girth_approx(g, {.epsilon = 0.5});
  std::printf("%-34s %10u %10llu %8s\n", "girth (x,1.5), Theorem 5",
              gapx.girth_estimate,
              static_cast<unsigned long long>(gapx.stats.rounds), "1.5");

  const auto gex = core::run_girth(g);
  std::printf("%-34s %10u %10llu %8s\n", "girth exact, Lemma 7", gex.girth,
              static_cast<unsigned long long>(gex.stats.rounds), "1.0");

  // Wire-level accounting of the exact run, straight from the engine.
  std::printf("\nexact-run wire stats: %s\n",
              exact.stats.debug_string().c_str());

  // Live networks lose packets. Re-run the cheap health check on a lossy
  // wire (10%% drops, deterministic seed) behind the reliable-delivery
  // layer: same answer, a constant factor more rounds, and the stats line
  // now shows what the transport did.
  congest::EngineConfig lossy;
  congest::FaultPlan plan;
  plan.seed = 2026;
  plan.drop_prob = 0.10;
  lossy.faults = plan;
  lossy.max_rounds = 1000000;
  congest::apply_reliable(lossy);
  const auto faulty = core::distributed_diameter_2approx(g, lossy);
  std::printf("(x,2) check on a 10%%-loss wire:   estimate %u, %s\n",
              faulty.value, faulty.stats.debug_string().c_str());

  // Worse than loss: a router dies mid-measurement. The heartbeat detector
  // (DESIGN.md section 10) declares it, survivors terminate in degraded
  // mode, and the certificate says exactly which distance rows are still
  // trustworthy on the surviving topology.
  const Graph small = gen::cycle_with_chords(60, 8, 2026);
  core::ApspOptions crashed;
  congest::FaultPlan crash_plan;
  crash_plan.crashes.push_back({17, 400});  // mid-run crash-stop
  crashed.engine.faults = crash_plan;
  crashed.engine.max_rounds = 1000000;
  congest::apply_reliable(crashed.engine);
  auto deg = core::run_pebble_apsp(small, crashed);

  std::printf("\nfull APSP on %s with node 17 crashing mid-run:\n",
              small.summary().c_str());
  std::printf("  status %s after %llu real rounds (crashed %u, detector "
              "verdicts %llu)\n",
              congest::to_string(deg.status),
              static_cast<unsigned long long>(deg.stats.rounds),
              deg.stats.nodes_crashed,
              static_cast<unsigned long long>(deg.stats.neighbors_suspected));
  std::uint32_t complete = 0, partial = 0, lost = 0;
  std::vector<NodeId> sources(small.num_nodes());
  for (NodeId s = 0; s < small.num_nodes(); ++s) {
    sources[s] = s;
    switch (deg.coverage[s]) {
      case core::RowCoverage::kComplete: ++complete; break;
      case core::RowCoverage::kPartial: ++partial; break;
      case core::RowCoverage::kLost: ++lost; break;
    }
  }
  std::printf("  coverage over survivors: %u complete, %u partial, %u lost\n",
              complete, partial, lost);
  const auto cert = core::certify_rows(
      small, deg.survived, sources,
      [&](NodeId v, NodeId s) { return deg.dist.at(v, s); });
  std::printf("  distributed certificate: %u/%zu rows proven exact on the "
              "surviving subgraph (2 rounds each)\n",
              cert.rows_certified, sources.size());
  for (const NodeId s : {NodeId{0}, NodeId{17}, NodeId{30}}) {
    std::printf("    row %2u: coverage %s, %s\n", s,
                core::to_string(deg.coverage[s]),
                cert.certified[s] != 0 ? "certified" : "not certifiable");
  }

  // Self-healing (DESIGN.md section 13): instead of re-running the whole
  // Theta(n)-round APSP, repair exactly what broke — one S-SP pass with the
  // suspect rows as sources, per surviving component, O(|S_missing| + D)
  // rounds — then re-certify every row, the crashed router's included (its
  // row proves all-infinite: node 17 is simply unreachable now).
  const auto rep = core::repair_apsp(small, deg);
  std::printf("  self-heal: %s\n", rep.debug_string().c_str());
  std::printf("  repaired %u suspect rows in %llu rounds (bound %llu; the "
              "degraded run itself took %llu) — %s\n",
              rep.rows_repaired,
              static_cast<unsigned long long>(rep.repair_rounds),
              static_cast<unsigned long long>(rep.round_bound),
              static_cast<unsigned long long>(deg.stats.rounds),
              rep.all_certified() ? "every row now certified"
                                  : "some rows remain uncertified");

  // Observability (DESIGN.md section 12): attach a structured trace and load
  // histograms to a fault-free APSP run. Collection is sharded with the
  // engine, so watching costs no parallelism, and the per-edge histogram
  // shows Lemma 1's schedule live: no edge ever carries two floods in one
  // round.
  congest::TraceLog trace;
  congest::EngineMetrics metrics;
  core::ApspOptions watched;
  watched.engine.trace = &trace;
  watched.engine.metrics = &metrics;
  core::FloodCongestionMonitor monitor(small);
  watched.engine.send_observer = monitor.hook();
  const auto traced = core::run_pebble_apsp(small, watched);
  std::printf("\ninstrumented APSP on %s:\n", small.summary().c_str());
  std::printf("  %zu trace events over %llu rounds; %llu flood sends, "
              "%llu Lemma 1 violations\n",
              trace.size(),
              static_cast<unsigned long long>(traced.stats.rounds),
              static_cast<unsigned long long>(monitor.flood_sends()),
              static_cast<unsigned long long>(monitor.violations()));
  std::printf("  per-(edge,round) messages: max %llu (Lemma 1 admits one "
              "flood + pebble/control)\n",
              static_cast<unsigned long long>(
                  metrics.edge_messages.max_value()));
  std::printf("  flood congestion from the trace itself: max %llu "
              "kApspFlood per edge-round\n",
              static_cast<unsigned long long>(congest::max_sends_per_edge_round(
                  trace.events(), core::kApspFlood)));
  std::printf("  round activity: mean %.1f msgs/round, peak %llu "
              "(busiest wave)\n",
              metrics.round_activity.mean(),
              static_cast<unsigned long long>(
                  metrics.round_activity.max_value()));

  std::printf(
      "\noperator takeaway: a (x,2) health check costs ~D rounds; tight "
      "monitoring costs ~n; crashes cost a detection window and a "
      "certificate, never a hang or a silent lie.\n");
  return 0;
}
