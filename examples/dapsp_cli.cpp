// dapsp_cli — command-line front end over the library: read a graph (edge
// list file or stdin, or generate one), run any of the paper's protocols,
// print results and CONGEST cost.
//
//   dapsp_cli gen path 16                      # emit an edge list
//   dapsp_cli gen random 100 150 --seed 7
//   dapsp_cli apsp -g net.txt                  # Algorithm 1
//   dapsp_cli diameter -g net.txt --epsilon 0.5
//   dapsp_cli girth -g net.txt
//   dapsp_cli ssp -g net.txt --sources 0,5,9   # Algorithm 2
//   dapsp_cli kdom -g net.txt --k 3
//   dapsp_cli labels -g net.txt --k 2          # APASP distance labels
//   dapsp_cli tree-check -g net.txt
//   dapsp_cli two-vs-four -g net.txt
//
// With no -g, the graph is read from stdin.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "congest/faults.h"
#include "congest/reliable.h"
#include "congest/trace.h"
#include "core/apsp_applications.h"
#include "core/distance_labels.h"
#include "core/ecc_approx.h"
#include "core/girth.h"
#include "core/girth_approx.h"
#include "core/kdom.h"
#include "core/pebble_apsp.h"
#include "core/repair.h"
#include "core/ssp.h"
#include "core/tree_check.h"
#include "core/two_vs_four.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/metrics.h"

using namespace dapsp;

namespace {

struct Args {
  std::string command;
  std::optional<std::string> graph_file;
  std::vector<std::string> positional;
  double epsilon = 0.5;
  std::uint32_t k = 1;
  std::uint64_t seed = 1;
  std::vector<NodeId> sources;
  bool exact = false;
  // Engine worker threads (0 = one per hardware thread). Results are
  // bit-identical at every value; this only changes wall-clock.
  std::uint32_t threads = 1;
  // Structured observability (apsp and ssp): .json = Chrome trace,
  // .jsonl/.csv by extension; metrics default to JSON, .csv by extension.
  std::optional<std::string> trace_out;
  std::optional<std::string> metrics_out;
  // Fault injection (apsp only): the run is wrapped in the reliable layer
  // and may end degraded; --repair then re-runs S-SP over the suspect rows.
  double drop = 0.0;
  double corrupt = 0.0;
  std::uint64_t fault_seed = 1;
  std::vector<congest::NodeCrash> crashes;
  bool repair = false;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: dapsp_cli <command> [-g graph.txt] [options]\n"
      "commands:\n"
      "  gen <family> <args...>   path|cycle|grid|random|tree|clique-chain\n"
      "  apsp                     Algorithm 1: distances + properties\n"
      "  diameter|radius|ecc      exact (--exact) or (x,1+eps) [--epsilon]\n"
      "  center|peripheral        exact or approximate sets\n"
      "  girth                    exact (--exact) or (x,1+eps)\n"
      "  ssp --sources a,b,c      Algorithm 2\n"
      "  kdom --k <k>             k-dominating set\n"
      "  labels --k <k>           APASP distance labels + spot queries\n"
      "  tree-check               Claim 1\n"
      "  two-vs-four              Algorithm 3 (promise: diameter 2 or 4)\n"
      "options: --epsilon <e>  --k <k>  --seed <s>  --exact\n"
      "         --threads <t>  engine workers (0 = all cores; results are\n"
      "                        identical at every thread count)\n"
      "         --trace-out <f>    structured event trace (apsp, ssp):\n"
      "                            .json Chrome trace, .jsonl, or .csv\n"
      "         --metrics-out <f>  load histograms + counters: .json or .csv\n"
      "fault injection (apsp; the run is wrapped in the reliable layer):\n"
      "         --drop <p>         per-message drop probability\n"
      "         --corrupt <p>      per-message payload-corruption probability\n"
      "         --crash v@round    crash-stop node v at that round (repeatable)\n"
      "         --fault-seed <s>   seed of the fault plan (default 1)\n"
      "         --repair           self-heal a degraded run (S-SP over the\n"
      "                            suspect rows) and print the RepairReport\n"
      "exit codes: 0 exact/repaired-and-certified tables\n"
      "            1 error          2 usage, or degraded tables left unrepaired\n"
      "                               (run without --repair, or repair failed\n"
      "                               to certify every row)\n"
      "            3 repair exceeded its O(|S|+D) round bound\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  if (argc < 2) usage();
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "-g" || arg == "--graph") {
      a.graph_file = next();
    } else if (arg == "--epsilon") {
      a.epsilon = std::stod(next());
    } else if (arg == "--k") {
      a.k = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--seed") {
      a.seed = std::stoull(next());
    } else if (arg == "--threads") {
      a.threads = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--trace-out") {
      a.trace_out = next();
    } else if (arg == "--metrics-out") {
      a.metrics_out = next();
    } else if (arg == "--exact") {
      a.exact = true;
    } else if (arg == "--drop") {
      a.drop = std::stod(next());
    } else if (arg == "--corrupt") {
      a.corrupt = std::stod(next());
    } else if (arg == "--fault-seed") {
      a.fault_seed = std::stoull(next());
    } else if (arg == "--crash") {
      const std::string spec = next();
      const std::size_t at = spec.find('@');
      if (at == std::string::npos) usage();
      a.crashes.push_back(
          {static_cast<NodeId>(std::stoul(spec.substr(0, at))),
           std::stoull(spec.substr(at + 1))});
    } else if (arg == "--repair") {
      a.repair = true;
    } else if (arg == "--sources") {
      std::stringstream ss(next());
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        a.sources.push_back(static_cast<NodeId>(std::stoul(tok)));
      }
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      a.positional.push_back(arg);
    }
  }
  return a;
}

Graph load_graph(const Args& a) {
  if (a.graph_file) {
    std::ifstream in(*a.graph_file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", a.graph_file->c_str());
      std::exit(1);
    }
    return io::read_edge_list(in);
  }
  return io::read_edge_list(std::cin);
}

void print_stats(const congest::RunStats& s) {
  std::printf("-- CONGEST cost: rounds=%llu messages=%llu bits=%llu "
              "B=%u max_edge_bits=%llu\n",
              static_cast<unsigned long long>(s.rounds),
              static_cast<unsigned long long>(s.messages),
              static_cast<unsigned long long>(s.total_bits), s.bandwidth_bits,
              static_cast<unsigned long long>(s.max_edge_bits));
}

// Caller-owned sinks the engine writes into when --trace-out/--metrics-out
// are given (apsp and ssp, the commands that expose their engine config).
struct Instrumentation {
  congest::TraceLog trace;
  congest::EngineMetrics metrics;

  void attach(const Args& a, congest::EngineConfig& cfg) {
    if (a.trace_out) cfg.trace = &trace;
    if (a.metrics_out) cfg.metrics = &metrics;
  }
};

bool has_suffix(const std::string& s, const char* suffix) {
  const std::size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

std::ofstream open_or_die(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  return out;
}

void write_instrumentation(const Args& a, const Instrumentation& instr,
                           const congest::RunStats& stats) {
  if (a.trace_out) {
    std::ofstream out = open_or_die(*a.trace_out);
    if (has_suffix(*a.trace_out, ".jsonl")) {
      instr.trace.write_jsonl(out);
    } else if (has_suffix(*a.trace_out, ".csv")) {
      instr.trace.write_csv(out);
    } else {
      instr.trace.write_chrome_json(out);
    }
    std::fprintf(stderr, "trace: %zu events -> %s\n", instr.trace.size(),
                 a.trace_out->c_str());
  }
  if (a.metrics_out) {
    MetricsRegistry reg;
    reg.counter("rounds") = stats.rounds;
    reg.counter("messages") = stats.messages;
    reg.counter("total_bits") = stats.total_bits;
    reg.counter("bandwidth_bits") = stats.bandwidth_bits;
    reg.counter("max_edge_bits") = stats.max_edge_bits;
    reg.counter("max_edge_messages") = stats.max_edge_messages;
    reg.counter("messages_dropped") = stats.messages_dropped;
    reg.counter("messages_corrupted") = stats.messages_corrupted;
    reg.counter("nodes_crashed") = stats.nodes_crashed;
    reg.counter("node_stall_rounds") = stats.node_stall_rounds;
    reg.counter("repairs_attempted") = stats.repairs_attempted;
    reg.counter("repairs_escalated") = stats.repairs_escalated;
    reg.counter("checkpoint_bytes") = stats.checkpoint_bytes;
    reg.histogram("edge_bits").merge(instr.metrics.edge_bits);
    reg.histogram("edge_messages").merge(instr.metrics.edge_messages);
    reg.histogram("round_activity").merge(instr.metrics.round_activity);
    std::ofstream out = open_or_die(*a.metrics_out);
    if (has_suffix(*a.metrics_out, ".csv")) {
      reg.write_csv(out);
    } else {
      reg.write_json(out);
    }
    std::fprintf(stderr, "metrics -> %s\n", a.metrics_out->c_str());
  }
}

int cmd_gen(const Args& a) {
  if (a.positional.empty()) usage();
  const std::string& fam = a.positional[0];
  auto arg_at = [&](std::size_t i, NodeId fallback) -> NodeId {
    return i < a.positional.size()
               ? static_cast<NodeId>(std::stoul(a.positional[i]))
               : fallback;
  };
  Graph g;
  if (fam == "path") {
    g = gen::path(arg_at(1, 16));
  } else if (fam == "cycle") {
    g = gen::cycle(arg_at(1, 16));
  } else if (fam == "grid") {
    g = gen::grid(arg_at(1, 4), arg_at(2, 4));
  } else if (fam == "random") {
    const NodeId n = arg_at(1, 32);
    g = gen::random_connected(n, arg_at(2, n), a.seed);
  } else if (fam == "tree") {
    g = gen::balanced_tree(arg_at(1, 31), arg_at(2, 2));
  } else if (fam == "clique-chain") {
    g = gen::path_of_cliques(arg_at(1, 4), arg_at(2, 8));
  } else {
    usage();
  }
  io::write_edge_list(std::cout, g);
  return 0;
}

bool wants_faults(const Args& a) {
  return a.drop > 0.0 || a.corrupt > 0.0 || !a.crashes.empty();
}

int cmd_apsp(const Args& a, const Graph& g) {
  core::ApspOptions opt;
  opt.engine.threads = a.threads;
  if (wants_faults(a)) {
    congest::FaultPlan plan;
    plan.seed = a.fault_seed;
    plan.drop_prob = a.drop;
    plan.corrupt_prob = a.corrupt;
    plan.crashes = a.crashes;
    opt.engine.faults = plan;
    opt.engine.max_rounds = 1000000;
    congest::apply_reliable(opt.engine);
  }
  Instrumentation instr;
  instr.attach(a, opt.engine);
  core::ApspResult r = core::run_pebble_apsp(g, opt);
  if (r.aggregates_valid) {
    std::printf("diameter=%u radius=%u girth=", r.diameter, r.radius);
    if (r.girth == seq::kInfGirth) {
      std::printf("inf");
    } else {
      std::printf("%u", r.girth);
    }
    std::printf("\nper-node eccentricities:");
    for (NodeId v = 0; v < g.num_nodes(); ++v) std::printf(" %u", r.ecc[v]);
    std::printf("\n");
  }
  print_stats(r.stats);

  if (r.status == congest::RunStatus::kCompleted) {
    write_instrumentation(a, instr, r.stats);
    return 0;
  }

  // Degraded harvest: print the damage, optionally self-heal.
  std::size_t survivors = 0;
  for (const std::uint8_t s : r.survived) survivors += s != 0;
  std::printf("-- degraded run: %zu/%u nodes survived\n", survivors,
              g.num_nodes());
  if (!a.repair) {
    std::printf("-- tables are partial (rerun with --repair to self-heal)\n");
    write_instrumentation(a, instr, r.stats);
    return 2;
  }
  core::RepairOptions ropt;
  ropt.engine.threads = a.threads;
  const core::RepairReport report = core::repair_apsp(g, r, ropt);
  std::printf("-- %s\n", report.debug_string().c_str());
  // Fold the repair's engine cost (and the repairs_attempted /
  // repairs_escalated counters) into the run's instrumentation.
  congest::accumulate(r.stats, report.stats);
  write_instrumentation(a, instr, r.stats);
  if (!report.bound_ok) return 3;
  return report.all_certified() ? 0 : 2;
}

int cmd_scalar(const Args& a, const Graph& g) {
  if (a.exact) {
    const auto r = a.command == "diameter" ? core::distributed_diameter(g)
                                           : core::distributed_radius(g);
    std::printf("%s = %u (exact)\n", a.command.c_str(), r.value);
    print_stats(r.stats);
  } else {
    const auto r = core::run_ecc_approx(g, {.epsilon = a.epsilon});
    const std::uint32_t est = a.command == "diameter" ? r.diameter_estimate
                                                      : r.radius_estimate;
    std::printf("%s ~ %u (additive slack <= %u)\n", a.command.c_str(), est,
                r.k);
    print_stats(r.stats);
  }
  return 0;
}

int cmd_set(const Args& a, const Graph& g) {
  std::vector<NodeId> members;
  congest::RunStats stats;
  if (a.exact) {
    auto r = a.command == "center" ? core::distributed_center(g)
                                   : core::distributed_peripheral(g);
    members = std::move(r.members);
    stats = r.stats;
  } else {
    const auto r = core::run_ecc_approx(g, {.epsilon = a.epsilon});
    members = a.command == "center" ? r.center_approx : r.peripheral_approx;
    stats = r.stats;
  }
  std::printf("%s (%s): ", a.command.c_str(), a.exact ? "exact" : "approx");
  for (const NodeId v : members) std::printf("%u ", v);
  std::printf("\n");
  print_stats(stats);
  return 0;
}

int cmd_ecc(const Args& a, const Graph& g) {
  if (a.exact) {
    const auto r = core::distributed_eccentricities(g);
    std::printf("eccentricities:");
    for (const std::uint32_t e : r.ecc) std::printf(" %u", e);
    std::printf("\n");
    print_stats(r.stats);
  } else {
    const auto r = core::run_ecc_approx(g, {.epsilon = a.epsilon});
    std::printf("eccentricity estimates (slack <= %u):", r.k);
    for (const std::uint32_t e : r.ecc_estimate) std::printf(" %u", e);
    std::printf("\n");
    print_stats(r.stats);
  }
  return 0;
}

int cmd_girth(const Args& a, const Graph& g) {
  if (a.exact) {
    const auto r = core::run_girth(g);
    if (r.girth == seq::kInfGirth) {
      std::printf("girth = inf (tree)\n");
    } else {
      std::printf("girth = %u\n", r.girth);
    }
    print_stats(r.stats);
  } else {
    const auto r = core::run_girth_approx(g, {.epsilon = a.epsilon});
    if (r.was_tree) {
      std::printf("girth = inf (tree)\n");
    } else {
      std::printf("girth ~ %u ((x,1+%.2f), %zu iterations)\n",
                  r.girth_estimate, a.epsilon, r.iterations.size());
    }
    print_stats(r.stats);
  }
  return 0;
}

int cmd_ssp(const Args& a, const Graph& g) {
  if (a.sources.empty()) usage();
  core::SspOptions opt;
  opt.engine.threads = a.threads;
  Instrumentation instr;
  instr.attach(a, opt.engine);
  const auto r = core::run_ssp(g, a.sources, opt);
  write_instrumentation(a, instr, r.stats);
  for (const NodeId s : r.sources) {
    std::printf("distances to %u:", s);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      std::printf(" %u", r.delta[v][s]);
    }
    std::printf("\n");
  }
  print_stats(r.stats);
  return 0;
}

int cmd_kdom(const Args& a, const Graph& g) {
  const auto r = core::run_kdom(g, a.k);
  std::printf("%u-dominating set (%zu nodes, bound %u): ", a.k, r.dom.size(),
              g.num_nodes() / (a.k + 1) + 1);
  for (const NodeId v : r.dom) std::printf("%u ", v);
  std::printf("\n");
  print_stats(r.stats);
  return 0;
}

int cmd_labels(const Args& a, const Graph& g) {
  const auto labels = core::build_distance_labels(g, a.k);
  std::printf("distance labels: %zu entries/node, additive error <= %u\n",
              labels.label_entries(), 2 * a.k);
  const NodeId n = g.num_nodes();
  std::printf("spot queries (u, v, estimate): ");
  for (NodeId i = 0; i < std::min<NodeId>(n, 5); ++i) {
    const NodeId u = i;
    const NodeId v = n - 1 - i;
    std::printf("(%u,%u)=%u ", u, v, labels.estimate(u, v));
  }
  std::printf("\n");
  print_stats(labels.stats());
  return 0;
}

int cmd_tree_check(const Graph& g) {
  const auto r = core::run_tree_check(g);
  std::printf("graph is %s (leader ecc = %u)\n",
              r.is_tree ? "a tree" : "not a tree", r.leader_ecc);
  print_stats(r.stats);
  return 0;
}

int cmd_two_vs_four(const Args& a, const Graph& g) {
  const auto r = core::run_two_vs_four(g, {.seed = a.seed});
  std::printf("diameter decision: %u (branch: %s, |S| = %u)\n", r.answer,
              r.used_low_degree_branch ? "low-degree" : "sampled",
              r.num_sources);
  print_stats(r.stats);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if ((a.trace_out || a.metrics_out) && a.command != "apsp" &&
      a.command != "ssp") {
    std::fprintf(stderr,
                 "--trace-out/--metrics-out are supported for apsp and ssp\n");
    return 2;
  }
  try {
    if (a.command == "gen") return cmd_gen(a);
    const Graph g = load_graph(a);
    std::fprintf(stderr, "loaded %s\n", g.summary().c_str());
    if (a.command == "apsp") return cmd_apsp(a, g);
    if (a.command == "diameter" || a.command == "radius") return cmd_scalar(a, g);
    if (a.command == "center" || a.command == "peripheral") return cmd_set(a, g);
    if (a.command == "ecc") return cmd_ecc(a, g);
    if (a.command == "girth") return cmd_girth(a, g);
    if (a.command == "ssp") return cmd_ssp(a, g);
    if (a.command == "kdom") return cmd_kdom(a, g);
    if (a.command == "labels") return cmd_labels(a, g);
    if (a.command == "tree-check") return cmd_tree_check(g);
    if (a.command == "two-vs-four") return cmd_two_vs_four(a, g);
    usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
