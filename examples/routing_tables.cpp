// Routing scenario (the paper's introduction): distance-vector (RIP) and
// link-state (OSPF) both compute all-pairs shortest paths, but once messages
// are limited to O(log n) bits they become slow; Algorithm 1 builds the same
// routing information in O(n) rounds.
//
// We simulate an ISP-like topology (a backbone ring with customer trees),
// run all three protocols, verify they agree, extract next-hop routing
// tables for one router, and compare convergence cost.
//
//   $ ./routing_tables
#include <cstdio>
#include <vector>

#include "baselines/distance_vector.h"
#include "baselines/link_state.h"
#include "core/pebble_apsp.h"
#include "graph/graph.h"
#include "util/rng.h"

using namespace dapsp;

namespace {

// Backbone ring of `core_n` routers; each backbone router serves a small
// customer tree.
Graph isp_topology(NodeId core_n, NodeId tree_per_core, std::uint64_t seed) {
  std::vector<Edge> edges;
  for (NodeId i = 0; i < core_n; ++i) {
    edges.push_back({i, (i + 1) % core_n});
  }
  // A couple of backbone shortcuts for redundancy.
  Rng rng(seed);
  for (int i = 0; i < 3; ++i) {
    const auto a = static_cast<NodeId>(rng.below(core_n));
    const auto b = static_cast<NodeId>(rng.below(core_n));
    if (a != b) edges.push_back({a, b});
  }
  NodeId next = core_n;
  for (NodeId i = 0; i < core_n; ++i) {
    for (NodeId t = 0; t < tree_per_core; ++t) {
      const NodeId parent = t == 0 ? i : next - 1;
      edges.push_back({parent, next});
      ++next;
    }
  }
  return Graph(next, edges);
}

}  // namespace

int main() {
  const Graph net = isp_topology(16, 4, 7);
  std::printf("ISP topology: %s (ring backbone + customer chains)\n\n",
              net.summary().c_str());

  const auto apsp = core::run_pebble_apsp(net);
  const auto dv = baselines::run_distance_vector(net);
  const auto ls = baselines::run_link_state(net);

  const bool agree = apsp.dist == dv.dist && apsp.dist == ls.dist;
  std::printf("all three protocols agree on every distance: %s\n\n",
              agree ? "yes" : "NO (bug!)");

  std::printf("convergence cost (rounds / messages):\n");
  std::printf("  %-28s %8llu %12llu\n", "Algorithm 1 (this paper)",
              static_cast<unsigned long long>(apsp.stats.rounds),
              static_cast<unsigned long long>(apsp.stats.messages));
  std::printf("  %-28s %8llu %12llu\n", "distance-vector (RIP-like)",
              static_cast<unsigned long long>(dv.stats.rounds),
              static_cast<unsigned long long>(dv.stats.messages));
  std::printf("  %-28s %8llu %12llu\n", "link-state (OSPF-like)",
              static_cast<unsigned long long>(ls.stats.rounds),
              static_cast<unsigned long long>(ls.stats.messages));

  // Next-hop table for router 0: forward toward the neighbor that lies on a
  // shortest path (distance decreases by one).
  std::printf("\nrouting table of router 0 (dest: next-hop, hops):\n");
  int shown = 0;
  for (NodeId dest = 1; dest < net.num_nodes() && shown < 12; ++dest) {
    for (const NodeId nh : net.neighbors(0)) {
      if (apsp.dist.at(nh, dest) + 1 == apsp.dist.at(0, dest)) {
        std::printf("  %3u: via %3u  (%u hops)\n", dest, nh,
                    apsp.dist.at(0, dest));
        ++shown;
        break;
      }
    }
  }
  std::printf("  ... (%u destinations total)\n", net.num_nodes() - 1);
  return 0;
}
