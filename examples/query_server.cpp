// query_server — export and serve immutable DQRY query snapshots.
//
// Export mode builds a graph (or churns one through DapspService), encodes
// the served tables + per-row statuses into a DQRY v1 blob (optionally with
// a 2-hop distance labeling), and writes it atomically:
//
//   query_server --export snap.dqry --gen random --universe 64 --seed 7
//   query_server --export snap.dqry --universe 32 --updates 40 --chaos 0.05
//   query_server --export snap.dqry --universe 64 --labels 2
//
// Serving modes mmap a previously exported blob (checksum-verified on open)
// and answer from it without ever copying the tables:
//
//   query_server --snapshot snap.dqry --info
//   query_server --snapshot snap.dqry --query 3 17
//   query_server --snapshot snap.dqry --k-nearest 3 5
//   query_server --snapshot snap.dqry --ecc 3
//   query_server --snapshot snap.dqry --estimate 3 17   (needs --labels)
//   query_server --snapshot snap.dqry --bench-lookups 1000000
//
// Overload mode replays a seeded virtual-clock arrival storm through the
// resilience layer (core/resilience.h): deadlines, per-class admission,
// brownout-to-estimates, jittered retries. Prints the latency/shed summary
// and the structured HealthReport; exits 1 if any served answer overclaims
// its freshness or the shed accounting fails to balance:
//
//   query_server --snapshot snap.dqry --overload 20000 --offered 200000
//   query_server --snapshot snap.dqry --overload 20000 --offered 200000 \
//       --deadline-us 8 --trace-out shed.jsonl --metrics-out health.json
//
// Every answer carries its serving status (exact/repaired/stale, plus
// approximate for label estimates): a stale row is served, but the caller
// is told the value may not reflect the epoch's graph, and a label-derived
// estimate is never passed off as exact. Exit codes: 0 ok, 1 error, 2 usage.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "congest/trace.h"
#include "core/distance_labels.h"
#include "core/query.h"
#include "core/resilience.h"
#include "core/service.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/blob.h"
#include "util/metrics.h"
#include "util/rng.h"

using namespace dapsp;

namespace {

struct Args {
  // Export.
  std::optional<std::string> export_path;
  std::string gen = "random";
  std::optional<std::string> graph_file;
  NodeId universe = 24;
  std::uint64_t seed = 1;
  std::uint64_t updates = 0;
  double chaos = 0.0;
  std::optional<std::uint32_t> labels_k;
  // Serve.
  std::optional<std::string> snapshot_path;
  bool info = false;
  std::optional<std::pair<NodeId, NodeId>> query;
  std::optional<std::pair<NodeId, std::uint32_t>> k_nearest;
  std::optional<NodeId> ecc;
  std::optional<std::pair<NodeId, NodeId>> estimate;
  std::uint64_t bench_lookups = 0;
  // Overload replay.
  std::uint64_t overload_requests = 0;
  std::uint64_t offered_per_sec = 100'000;
  std::uint64_t deadline_us = 0;
  std::optional<std::string> trace_out;
  std::optional<std::string> metrics_out;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: query_server --export <f> [--gen fam|--graph f] [--universe n]\n"
      "                    [--seed s] [--updates k] [--chaos p] [--labels k]\n"
      "       query_server --snapshot <f> (--info | --query u v |\n"
      "                    --k-nearest u k | --ecc u | --estimate u v |\n"
      "                    --bench-lookups n |\n"
      "                    --overload n [--offered r] [--deadline-us d]\n"
      "                    [--seed s] [--trace-out f] [--metrics-out f])\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    auto next_node = [&]() { return static_cast<NodeId>(std::stoul(next())); };
    if (arg == "--export") {
      a.export_path = next();
    } else if (arg == "--gen") {
      a.gen = next();
    } else if (arg == "-g" || arg == "--graph") {
      a.graph_file = next();
    } else if (arg == "--universe") {
      a.universe = next_node();
    } else if (arg == "--seed") {
      a.seed = std::stoull(next());
    } else if (arg == "--updates") {
      a.updates = std::stoull(next());
    } else if (arg == "--chaos") {
      a.chaos = std::stod(next());
    } else if (arg == "--labels") {
      a.labels_k = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--snapshot") {
      a.snapshot_path = next();
    } else if (arg == "--info") {
      a.info = true;
    } else if (arg == "--query") {
      const NodeId u = next_node();
      a.query = {u, next_node()};
    } else if (arg == "--k-nearest") {
      const NodeId u = next_node();
      a.k_nearest = {u, static_cast<std::uint32_t>(std::stoul(next()))};
    } else if (arg == "--ecc") {
      a.ecc = next_node();
    } else if (arg == "--estimate") {
      const NodeId u = next_node();
      a.estimate = {u, next_node()};
    } else if (arg == "--bench-lookups") {
      a.bench_lookups = std::stoull(next());
    } else if (arg == "--overload") {
      a.overload_requests = std::stoull(next());
    } else if (arg == "--offered") {
      a.offered_per_sec = std::stoull(next());
    } else if (arg == "--deadline-us") {
      a.deadline_us = std::stoull(next());
    } else if (arg == "--trace-out") {
      a.trace_out = next();
    } else if (arg == "--metrics-out") {
      a.metrics_out = next();
    } else {
      usage();
    }
  }
  if (a.export_path.has_value() == a.snapshot_path.has_value()) usage();
  return a;
}

Graph make_graph(const Args& a) {
  if (a.graph_file) {
    std::ifstream in(*a.graph_file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", a.graph_file->c_str());
      std::exit(1);
    }
    return io::read_edge_list(in);
  }
  const NodeId n = a.universe;
  if (a.gen == "random") return gen::random_connected(n, n / 2, a.seed);
  if (a.gen == "path") return gen::path(n);
  if (a.gen == "cycle") return gen::cycle(n);
  if (a.gen == "tree") return gen::balanced_tree(n, 2);
  if (a.gen == "grid") {
    NodeId rows = static_cast<NodeId>(std::sqrt(static_cast<double>(n)));
    while (rows > 1 && n % rows != 0) --rows;
    return gen::grid(rows, n / rows);
  }
  std::fprintf(stderr, "unknown --gen family %s\n", a.gen.c_str());
  std::exit(2);
}

int run_export(const Args& a) {
  const Graph g = make_graph(a);
  core::DapspService svc(g, {});
  if (a.updates > 0) {
    DeltaPlanConfig pc;
    pc.seed = a.seed;
    pc.crash_prob = a.chaos;  // bit-rot off: exported statuses stay honest
    DeltaPlan plan(pc);
    for (std::uint64_t u = 0; u < a.updates; ++u) {
      svc.step(plan.next(svc.dynamic_graph()));
    }
  }

  // Labels are built from the final graph; churn can leave it disconnected,
  // in which case the labeling refuses (by design) and the snapshot ships
  // without the label section rather than with a partial one.
  std::optional<core::DistanceLabeling> labels;
  if (a.labels_k) {
    try {
      labels.emplace(
          core::build_distance_labels(svc.dynamic_graph().snapshot(),
                                      *a.labels_k));
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "labels skipped: %s\n", e.what());
    }
  }

  const std::vector<std::uint8_t> blob = core::encode_query_snapshot(
      svc, /*sequence=*/0, /*degraded=*/!svc.fully_certified(),
      labels ? &*labels : nullptr);
  write_blob_atomic(*a.export_path, blob);
  std::printf("exported %zu bytes: n=%u epoch=%llu labels=%s\n", blob.size(),
              svc.dynamic_graph().universe(),
              static_cast<unsigned long long>(svc.epoch()),
              labels ? "yes" : "no");
  return 0;
}

void print_answer(const char* what, const core::QueryAnswer& ans) {
  if (!ans.active) {
    std::printf("%s: inactive endpoint\n", what);
    return;
  }
  if (ans.dist == kInfDist) {
    std::printf("%s: unreachable [%s]\n", what, core::to_string(ans.status));
    return;
  }
  std::printf("%s: dist=%u next_hop=%s [%s]\n", what, ans.dist,
              ans.next_hop == core::kNoNextHop
                  ? "-"
                  : std::to_string(ans.next_hop).c_str(),
              core::to_string(ans.status));
}

int run_serve(const Args& a) {
  const core::QuerySnapshot snap = core::QuerySnapshot::from_file(*a.snapshot_path);
  if (a.info) {
    std::uint32_t active = 0, stale = 0;
    for (NodeId v = 0; v < snap.n(); ++v) {
      if (!snap.active(v)) continue;
      ++active;
      if (snap.status(v) == core::RowStatus::kStale) ++stale;
    }
    std::printf(
        "snapshot %s: %zu bytes, n=%u active=%u epoch=%llu seq=%llu "
        "degraded=%d stale_rows=%u labels=%s",
        a.snapshot_path->c_str(), snap.bytes().size(), snap.n(), active,
        static_cast<unsigned long long>(snap.epoch()),
        static_cast<unsigned long long>(snap.sequence()),
        snap.degraded() ? 1 : 0, stale, snap.has_labels() ? "yes" : "no");
    if (snap.has_labels()) {
      std::printf(" (k=%u, %zu dominators)", snap.label_k(),
                  snap.dominators().size());
    }
    std::printf("\n");
    return 0;
  }
  if (a.query) {
    print_answer("p2p", snap.p2p(a.query->first, a.query->second));
    return 0;
  }
  if (a.k_nearest) {
    const core::KNearestAnswer ans =
        snap.k_nearest(a.k_nearest->first, a.k_nearest->second);
    if (!ans.active) {
      std::printf("k-nearest: inactive source\n");
      return 0;
    }
    std::printf("k-nearest of %u [%s]:", a.k_nearest->first,
                core::to_string(ans.status));
    for (const core::NearNeighbor& nn : ans.nearest) {
      std::printf(" %u@%u", nn.node, nn.dist);
    }
    std::printf("\n");
    return 0;
  }
  if (a.ecc) {
    const core::EccentricityAnswer ans = snap.eccentricity(*a.ecc);
    if (!ans.active) {
      std::printf("ecc: inactive source\n");
      return 0;
    }
    std::printf("ecc(%u)=%u farthest=%u unreachable=%u [%s]\n", *a.ecc,
                ans.ecc, ans.farthest, ans.unreachable,
                core::to_string(ans.status));
    return 0;
  }
  if (a.estimate) {
    if (!snap.has_labels()) {
      std::fprintf(stderr, "snapshot has no label section\n");
      return 1;
    }
    const std::uint32_t est =
        snap.label_estimate(a.estimate->first, a.estimate->second);
    const core::QueryAnswer exact =
        snap.p2p(a.estimate->first, a.estimate->second);
    // A label-derived answer is never status-exact, whatever the row says:
    // the caller sees the same kApproximate marker the brownout path uses.
    std::printf("estimate(%u,%u)=%u [%s] exact=%u (additive slack <= %u)\n",
                a.estimate->first, a.estimate->second, est,
                core::to_string(core::ServeStatus::kApproximate), exact.dist,
                2 * snap.label_k());
    return 0;
  }
  if (a.overload_requests > 0) {
    core::OverloadConfig cfg;
    cfg.seed = a.seed;
    cfg.requests = a.overload_requests;
    cfg.arrivals_per_sec = a.offered_per_sec;
    cfg.deadline_us = a.deadline_us;
    // Serving-tier defaults: interactive protected by concurrency + a tight
    // wait bound, batch bounded, background rate-limited; brownout swaps
    // heavy scans for label estimates once the queues back up.
    auto& inter = cfg.admission.policy(core::PriorityClass::kInteractive);
    inter.max_concurrent = 4;
    inter.max_queue = 16;
    inter.max_wait_us = 50;
    auto& batch = cfg.admission.policy(core::PriorityClass::kBatch);
    batch.max_concurrent = 2;
    batch.max_queue = 8;
    batch.max_wait_us = 500;
    auto& bg = cfg.admission.policy(core::PriorityClass::kBackground);
    bg.tokens_per_sec = 20'000;
    bg.burst = 4;
    bg.max_concurrent = 1;
    bg.max_queue = 4;
    bg.max_wait_us = 1'000;
    cfg.brownout.enter_queue_depth = 6;
    cfg.brownout.exit_queue_depth = 2;
    cfg.retry.seed = a.seed;

    congest::TraceLog trace;
    const core::SimReport rep =
        run_overload_sim(snap, cfg, a.trace_out ? &trace : nullptr);

    std::printf(
        "overload: offered=%llu admitted=%llu shed=%llu "
        "(rate=%llu queue_full=%llu queue_wait=%llu)\n",
        static_cast<unsigned long long>(rep.offered),
        static_cast<unsigned long long>(rep.admitted),
        static_cast<unsigned long long>(rep.shed_total()),
        static_cast<unsigned long long>(rep.shed_rate),
        static_cast<unsigned long long>(rep.shed_queue_full),
        static_cast<unsigned long long>(rep.shed_queue_wait));
    std::printf(
        "served: exact=%llu stale=%llu approximate=%llu truncated=%llu "
        "(p50/p99 interactive %llu/%llu us, virtual end %llu us)\n",
        static_cast<unsigned long long>(rep.exact_served),
        static_cast<unsigned long long>(rep.stale_served),
        static_cast<unsigned long long>(rep.approximate_served),
        static_cast<unsigned long long>(rep.deadline_truncated),
        static_cast<unsigned long long>(
            rep.quantile_us(core::PriorityClass::kInteractive, 0.50)),
        static_cast<unsigned long long>(
            rep.quantile_us(core::PriorityClass::kInteractive, 0.99)),
        static_cast<unsigned long long>(rep.end_us));
    const core::HealthReport health = rep.health(&snap);
    std::printf("health: %s\n", health.debug_string().c_str());

    if (a.trace_out) {
      std::ofstream out(*a.trace_out);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", a.trace_out->c_str());
        return 1;
      }
      const std::string& p = *a.trace_out;
      if (p.size() >= 4 && p.compare(p.size() - 4, 4, ".csv") == 0) {
        trace.write_csv(out);
      } else if (p.size() >= 6 &&
                 p.compare(p.size() - 6, 6, ".jsonl") == 0) {
        trace.write_jsonl(out);
      } else {
        trace.write_chrome_json(out);
      }
      std::fprintf(stderr, "trace: %zu events -> %s\n", trace.size(),
                   a.trace_out->c_str());
    }
    if (a.metrics_out) {
      MetricsRegistry reg;
      health.to_metrics(reg);
      std::ofstream out(*a.metrics_out);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", a.metrics_out->c_str());
        return 1;
      }
      const std::string& p = *a.metrics_out;
      if (p.size() >= 4 && p.compare(p.size() - 4, 4, ".csv") == 0) {
        reg.write_csv(out);
      } else {
        reg.write_json(out);
      }
      std::fprintf(stderr, "metrics -> %s\n", a.metrics_out->c_str());
    }

    // The contract this mode exists to enforce.
    if (rep.overclaims != 0) {
      std::fprintf(stderr, "FAIL: %llu degraded answers claimed exact\n",
                   static_cast<unsigned long long>(rep.overclaims));
      return 1;
    }
    if (rep.offered != rep.admitted + rep.shed_total()) {
      std::fprintf(stderr, "FAIL: shed accounting does not balance\n");
      return 1;
    }
    return 0;
  }
  if (a.bench_lookups > 0) {
    Rng rng(a.seed);
    const NodeId n = snap.n();
    std::uint64_t sum = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < a.bench_lookups; ++i) {
      const NodeId u = static_cast<NodeId>(rng.below(n));
      const NodeId v = static_cast<NodeId>(rng.below(n));
      sum += snap.p2p(u, v).dist;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("bench: %llu lookups in %.3fs = %.0f/sec (sum=%llu)\n",
                static_cast<unsigned long long>(a.bench_lookups), secs,
                static_cast<double>(a.bench_lookups) / secs,
                static_cast<unsigned long long>(sum));
    return 0;
  }
  usage();
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  try {
    return a.export_path ? run_export(a) : run_serve(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
