// Quickstart: build a small network, run the paper's O(n) APSP protocol
// (Algorithm 1), and read back everything the paper derives from it —
// distances, eccentricities, diameter, radius, center, peripheral vertices,
// girth — together with the CONGEST cost accounting.
//
//   $ ./quickstart
#include <cstdio>

#include "core/pebble_apsp.h"
#include "graph/generators.h"
#include "graph/io.h"

using namespace dapsp;

int main() {
  // A 4x5 grid network of 20 routers.
  const Graph g = gen::grid(4, 5);
  std::printf("network: %s\n", g.summary().c_str());

  // One call runs the full distributed protocol on the simulator: leader
  // tree, DFS pebble, n staggered BFS floods, O(D) aggregation.
  const core::ApspResult r = core::run_pebble_apsp(g);

  std::printf("\ndistance matrix (hop counts):\n    ");
  for (NodeId u = 0; u < g.num_nodes(); ++u) std::printf("%3u", u);
  std::printf("\n");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::printf("%3u:", v);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      std::printf("%3u", r.dist.at(v, u));
    }
    std::printf("\n");
  }

  std::printf("\nderived properties (Lemmas 2-7):\n");
  std::printf("  diameter = %u, radius = %u, girth = %u\n", r.diameter,
              r.radius, r.girth);
  std::printf("  center nodes:    ");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (r.is_center[v]) std::printf("%u ", v);
  }
  std::printf("\n  peripheral nodes:");
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (r.is_peripheral[v]) std::printf(" %u", v);
  }

  std::printf("\n\nCONGEST cost (the paper's measures):\n");
  std::printf("  rounds     = %llu   (Theorem 1: O(n))\n",
              static_cast<unsigned long long>(r.stats.rounds));
  std::printf("  messages   = %llu\n",
              static_cast<unsigned long long>(r.stats.messages));
  std::printf("  bandwidth  = %u bits/edge/round, worst edge load %u bits\n",
              r.stats.bandwidth_bits, r.stats.max_edge_bits);
  return 0;
}
