// dapsp_service — long-running DAPSP service soak driver.
//
// Builds an initial graph, then sustains a seeded churn stream (edge
// inserts/removes, node joins/leaves) interleaved with crash-stops and
// stored-entry bit-rot, healing incrementally every epoch and checkpointing
// on a cadence. The process exits 0 iff the final tables are fully certified
// against the final graph — the soak contract CI leans on.
//
//   dapsp_service --universe 24 --updates 500 --chaos 0.05 --scrub-every 50
//   dapsp_service --updates 200 --checkpoint-every 20 --kill-at 117
//       (dies mid-run with exit 42; --restore <ckpt> resumes bit-identically)
//   dapsp_service --restore s.ckpt --updates 200 ...  # resumes bit-identically
//
// Durable mode (--durable-dir) swaps the single checkpoint file for the WAL
// + atomic-rotation protocol of core/durable.h: every batch is journaled
// before it is applied, checkpoints rotate between two generations, and
// --recover resumes after ANY kill — including one injected at an exact
// durable byte offset:
//
//   dapsp_service --durable-dir d --updates 60 --checkpoint-every 8
//   dapsp_service --durable-dir d --updates 60 --kill-at-byte 5000
//       (exit 42 with a torn journal or half-written checkpoint)
//   dapsp_service --durable-dir d --updates 60 --recover --ckpt-dump out.bin
//       (replays the suffix, finishes, dumps a final checkpoint that is
//        byte-identical to an uninterrupted run's — the kill-matrix check)
//
// Serve mode (--serve <readers>) attaches the query tier (core/query.h):
// every epoch publishes immutable DQRY snapshots through a lock-free
// SnapshotStore while reader threads concurrently validate answers against
// a per-epoch sequential oracle — fresh-status answers must match exactly;
// stale ones make no claim. Exits 1 on any overclaim. The soak contract:
//
//   dapsp_service --universe 24 --updates 60 --serve 2 --chaos 0.05
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "congest/trace.h"
#include "core/durable.h"
#include "core/query.h"
#include "core/resilience.h"
#include "core/service.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "seq/apsp.h"
#include "util/journal.h"
#include "util/metrics.h"
#include "util/rng.h"

using namespace dapsp;

namespace {

struct Args {
  std::string gen = "random";  // random|grid|path|cycle|tree
  std::optional<std::string> graph_file;
  NodeId universe = 24;
  std::uint64_t updates = 500;
  std::uint64_t seed = 1;
  std::uint32_t batch_max = 3;
  double chaos = 0.0;  // crash_prob and corrupt_prob per batch
  std::uint32_t threads = 1;
  std::uint32_t scrub_every = 0;
  std::uint64_t checkpoint_every = 0;
  std::string checkpoint_file = "dapsp_service.ckpt";
  std::optional<std::string> restore_file;
  std::uint64_t kill_at = 0;  // die right after this update (0 = never)
  std::optional<std::string> durable_dir;
  bool recover = false;
  std::uint64_t kill_at_byte = 0;  // die at this durable byte (0 = never)
  std::optional<std::string> ckpt_dump;
  std::optional<std::string> trace_out;
  std::optional<std::string> metrics_out;
  bool quiet = false;
  // --breaker K@C: circuit-break the repair ladder after K consecutive
  // failed epochs, cool down for C epochs before the half-open probe.
  std::optional<core::BreakerConfig> breaker;
  // --strangle A:B: force watchdog_rounds=1 during updates A..B (1-based)
  // so every repair in that window trips — the seeded way to open the
  // breaker from the CLI.
  std::optional<std::pair<std::uint64_t, std::uint64_t>> strangle;
  std::uint32_t serve_readers = 0;   // query-tier soak reader threads
  std::uint32_t serve_lookups = 64;  // p2p probes per reader per snapshot
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: dapsp_service [options]\n"
      "  --gen <family>         random|grid|path|cycle|tree (default random)\n"
      "  -g <file>              initial graph from an edge list instead\n"
      "  --universe <n>         node universe for --gen (default 24)\n"
      "  --updates <k>          churn batches to run (default 500)\n"
      "  --seed <s>             generator + churn plan seed (default 1)\n"
      "  --batch-max <k>        max deltas per batch (default 3)\n"
      "  --chaos <p>            per-batch crash AND bit-rot probability\n"
      "  --threads <t>          engine workers (identical results at any t)\n"
      "  --scrub-every <k>      certificate scrub after every k-th epoch\n"
      "  --checkpoint-every <k> checkpoint after every k-th update\n"
      "  --checkpoint-file <f>  checkpoint path (default dapsp_service.ckpt)\n"
      "  --restore <f>          resume from a checkpoint file\n"
      "  --kill-at <k>          exit abruptly (code 42) after update k\n"
      "  --kill-at-epoch <k>    alias for --kill-at\n"
      "  --durable-dir <d>      WAL + rotating-checkpoint mode (core/durable)\n"
      "  --recover              resume from --durable-dir after a kill\n"
      "  --kill-at-byte <b>     exit 42 when durable byte b is written\n"
      "  --ckpt-dump <f>        write the final checkpoint blob to f\n"
      "  --trace-out <f>        service delta/epoch trace (.json/.jsonl/.csv)\n"
      "  --metrics-out <f>      service counters (.json or .csv)\n"
      "  --breaker <K@C>        open the repair circuit breaker after K\n"
      "                         consecutive failed epochs; cool down C epochs\n"
      "  --strangle <A:B>       watchdog_rounds=1 during updates A..B (trips\n"
      "                         every repair; pairs with --breaker)\n"
      "  --serve <r>            publish DQRY snapshots; r reader threads\n"
      "                         validate answers against the oracle\n"
      "  --serve-lookups <k>    p2p probes per reader per snapshot (def. 64)\n"
      "  --quiet                suppress per-epoch progress lines\n"
      "exit codes: 0 final tables fully certified   1 not certified/error\n"
      "            2 usage                          42 --kill-at fired\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--gen") {
      a.gen = next();
    } else if (arg == "-g" || arg == "--graph") {
      a.graph_file = next();
    } else if (arg == "--universe") {
      a.universe = static_cast<NodeId>(std::stoul(next()));
    } else if (arg == "--updates") {
      a.updates = std::stoull(next());
    } else if (arg == "--seed") {
      a.seed = std::stoull(next());
    } else if (arg == "--batch-max") {
      a.batch_max = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--chaos") {
      a.chaos = std::stod(next());
    } else if (arg == "--threads") {
      a.threads = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--scrub-every") {
      a.scrub_every = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--checkpoint-every") {
      a.checkpoint_every = std::stoull(next());
    } else if (arg == "--checkpoint-file") {
      a.checkpoint_file = next();
    } else if (arg == "--restore") {
      a.restore_file = next();
    } else if (arg == "--kill-at" || arg == "--kill-at-epoch") {
      a.kill_at = std::stoull(next());
    } else if (arg == "--durable-dir") {
      a.durable_dir = next();
    } else if (arg == "--recover") {
      a.recover = true;
    } else if (arg == "--kill-at-byte") {
      a.kill_at_byte = std::stoull(next());
    } else if (arg == "--ckpt-dump") {
      a.ckpt_dump = next();
    } else if (arg == "--trace-out") {
      a.trace_out = next();
    } else if (arg == "--metrics-out") {
      a.metrics_out = next();
    } else if (arg == "--breaker") {
      const std::string spec = next();
      unsigned k = 0, c = 0;
      if (std::sscanf(spec.c_str(), "%u@%u", &k, &c) != 2 || k == 0) usage();
      core::BreakerConfig bc;
      bc.failure_threshold = k;
      bc.cooldown_ticks = c;
      a.breaker = bc;
    } else if (arg == "--strangle") {
      const std::string spec = next();
      unsigned long long lo = 0, hi = 0;
      if (std::sscanf(spec.c_str(), "%llu:%llu", &lo, &hi) != 2 || lo == 0 ||
          hi < lo) {
        usage();
      }
      a.strangle = {lo, hi};
    } else if (arg == "--serve") {
      a.serve_readers = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--serve-lookups") {
      a.serve_lookups = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--quiet") {
      a.quiet = true;
    } else {
      usage();
    }
  }
  return a;
}

Graph make_graph(const Args& a) {
  if (a.graph_file) {
    std::ifstream in(*a.graph_file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", a.graph_file->c_str());
      std::exit(1);
    }
    return io::read_edge_list(in);
  }
  const NodeId n = a.universe;
  if (a.gen == "random") return gen::random_connected(n, n / 2, a.seed);
  if (a.gen == "path") return gen::path(n);
  if (a.gen == "cycle") return gen::cycle(n);
  if (a.gen == "tree") return gen::balanced_tree(n, 2);
  if (a.gen == "grid") {
    NodeId rows = static_cast<NodeId>(std::sqrt(static_cast<double>(n)));
    while (rows > 1 && n % rows != 0) --rows;
    return gen::grid(rows, n / rows);
  }
  std::fprintf(stderr, "unknown --gen family %s\n", a.gen.c_str());
  std::exit(2);
}

bool has_suffix(const std::string& s, const char* suffix) {
  const std::size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

std::ofstream open_or_die(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  return out;
}

void write_outputs(const Args& a, const congest::TraceLog& trace,
                   const core::ServiceStats& st,
                   const core::DurableStats* ds = nullptr,
                   const CrashPoint* crash = nullptr) {
  if (a.trace_out) {
    std::ofstream out = open_or_die(*a.trace_out);
    if (has_suffix(*a.trace_out, ".jsonl")) {
      trace.write_jsonl(out);
    } else if (has_suffix(*a.trace_out, ".csv")) {
      trace.write_csv(out);
    } else {
      trace.write_chrome_json(out);
    }
    std::fprintf(stderr, "trace: %zu events -> %s\n", trace.size(),
                 a.trace_out->c_str());
  }
  if (a.metrics_out) {
    MetricsRegistry reg;
    reg.counter("service_epochs") = st.epochs;
    reg.counter("service_deltas") = st.deltas_applied;
    reg.counter("service_crashes") = st.crashes;
    reg.counter("service_corrupted") = st.corrupted_entries;
    reg.counter("service_rows_repaired") = st.rows_repaired;
    reg.counter("service_epochs_failed") = st.epochs_failed;
    reg.counter("service_scrubs") = st.scrubs;
    reg.counter("service_checkpoints") = st.checkpoints;
    reg.counter("service_repairs_suppressed") = st.repairs_suppressed;
    reg.counter("service_breaker_transitions") = st.breaker_transitions;
    reg.counter("repairs_attempted") = st.run.repairs_attempted;
    reg.counter("repairs_escalated") = st.run.repairs_escalated;
    reg.counter("checkpoint_bytes") = st.run.checkpoint_bytes;
    reg.counter("rounds") = st.run.rounds;
    reg.counter("messages") = st.run.messages;
    reg.counter("total_bits") = st.run.total_bits;
    if (ds != nullptr) {
      reg.counter("service_journal_appends") = ds->journal_appends;
      reg.counter("service_journal_bytes") = ds->journal_bytes;
      reg.counter("service_checkpoint_rotations") = ds->checkpoints_rotated;
      reg.counter("service_recoveries") = ds->recoveries;
      reg.counter("service_batches_replayed") = ds->batches_replayed;
    }
    if (crash != nullptr) {
      // Total bytes this process pushed through the durable stream — the
      // sweep range for --kill-at-byte.
      reg.counter("durable_bytes") = crash->written;
    }
    std::ofstream out = open_or_die(*a.metrics_out);
    if (has_suffix(*a.metrics_out, ".csv")) {
      reg.write_csv(out);
    } else {
      reg.write_json(out);
    }
    std::fprintf(stderr, "metrics -> %s\n", a.metrics_out->c_str());
  }
}

void dump_blob(const std::string& path, std::span<const std::uint8_t> blob) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  std::fprintf(stderr, "checkpoint dump: %zu bytes -> %s\n", blob.size(),
               path.c_str());
}

// Query-tier soak harness (--serve): the service's SnapshotSink feeds a
// lock-free SnapshotStore; reader threads continuously pin the current
// snapshot (mid-swap included) and validate p2p/eccentricity answers
// against the per-epoch sequential oracle. The invariant: any answer whose
// row status is kExact or kRepaired must equal the oracle of the post-batch
// graph at the snapshot's epoch; kStale answers make no claim. Every
// violation counts as an overclaim and fails the run.
//
// Bit-rot (corrupt_prob) is excluded in serve mode: by design corruption is
// invisible to the analyzer and to row statuses until a scrub runs, so a
// validating soak over it would only measure the documented blind spot.
class ServeSoak {
 public:
  ServeSoak(std::uint32_t readers, std::uint32_t lookups)
      : publisher_(store_), reader_count_(readers), lookups_(lookups) {}

  ~ServeSoak() {
    if (!threads_.empty()) stop();
  }

  core::SnapshotSink* sink() { return &publisher_; }

  // Pre-size the oracle ledger to cover every epoch the run can publish.
  // Must happen before start(): a resize would relocate entries out from
  // under concurrent readers.
  void reserve_epochs(std::uint64_t max_epoch) { oracles_.resize(max_epoch + 1); }

  // Stage the oracle for `epoch` (post-batch graph) BEFORE the step/ctor
  // that publishes snapshots at that epoch. Assign-only; readers touch
  // entry e only after acquiring a snapshot published at epoch e, which the
  // store's seq_cst publish orders after this write.
  void stage_oracle(std::uint64_t epoch, const Graph& g) {
    oracles_.at(epoch) = seq::apsp(g);
  }

  void start() {
    for (std::uint32_t t = 0; t < reader_count_; ++t) {
      threads_.emplace_back([this, t] { reader_loop(t); });
    }
  }

  void stop() {
    done_.store(true, std::memory_order_release);
    for (std::thread& th : threads_) th.join();
    threads_.clear();
  }

  std::uint64_t validated() const { return validated_.load(); }
  std::uint64_t wrong() const { return wrong_.load(); }
  std::uint64_t swaps() const { return store_.swaps(); }

 private:
  void reader_loop(std::uint32_t t) {
    core::SnapshotReader reader(store_);
    Rng rng(0x5e47e + t);
    while (!done_.load(std::memory_order_acquire)) {
      core::SnapshotRef ref = reader.acquire();
      if (!ref) continue;
      const DistanceMatrix& oracle = oracles_[ref->epoch()];
      const NodeId n = ref->n();
      std::uint64_t ok = 0;
      for (std::uint32_t i = 0; i < lookups_; ++i) {
        const NodeId u = static_cast<NodeId>(rng.below(n));
        const NodeId v = static_cast<NodeId>(rng.below(n));
        const core::QueryAnswer a = ref->p2p(u, v);
        if (!a.active || a.status == core::RowStatus::kStale) continue;
        if (a.dist != oracle.at(u, v)) {
          wrong_.fetch_add(1);
          std::fprintf(stderr,
                       "OVERCLAIM: epoch %llu (%u -> %u) status %s served "
                       "%u oracle %u\n",
                       static_cast<unsigned long long>(ref->epoch()), u, v,
                       core::to_string(a.status), a.dist, oracle.at(u, v));
        } else {
          ++ok;
        }
      }
      const NodeId u = static_cast<NodeId>(rng.below(n));
      const core::EccentricityAnswer ec = ref->eccentricity(u);
      if (ec.active && ec.status != core::RowStatus::kStale) {
        std::uint32_t naive = 0;
        for (NodeId v = 0; v < n; ++v) {
          if (!ref->active(v)) continue;
          const std::uint32_t d = oracle.at(v, u);
          if (d != dapsp::kInfDist) naive = std::max(naive, d);
        }
        if (ec.ecc != naive) {
          wrong_.fetch_add(1);
        } else {
          ++ok;
        }
      }
      validated_.fetch_add(ok);
    }
  }

  core::SnapshotStore store_;
  core::ServingPublisher publisher_;
  std::uint32_t reader_count_;
  std::uint32_t lookups_;
  // Indexed by service epoch; sized once by reserve_epochs() before readers
  // start, then assigned entry-by-entry strictly before the matching epoch
  // is published.
  std::vector<DistanceMatrix> oracles_;
  std::vector<std::thread> threads_;
  std::atomic<bool> done_{false};
  std::atomic<std::uint64_t> validated_{0};
  std::atomic<std::uint64_t> wrong_{0};
};

// WAL + rotating-checkpoint mode. The run always ends with a scrub, so the
// --ckpt-dump blob is canonical: a killed-at-any-byte run, recovered and
// finished, dumps the exact bytes of an uninterrupted run.
int run_durable(const Args& a) {
  congest::TraceLog trace;
  CrashPoint crash;
  crash.kill_at_byte = a.kill_at_byte;
  crash.hard_exit = true;

  core::DurableConfig dcfg;
  dcfg.dir = *a.durable_dir;
  dcfg.checkpoint_every = static_cast<std::uint32_t>(a.checkpoint_every);
  dcfg.service.engine.threads = a.threads;
  dcfg.service.scrub_every = a.scrub_every;
  if (a.trace_out) dcfg.service.engine.trace = &trace;
  dcfg.crash = &crash;

  DeltaPlanConfig pc;
  pc.seed = a.seed;
  pc.max_batch = a.batch_max;
  pc.crash_prob = a.chaos;
  pc.corrupt_prob = a.chaos;
  DeltaPlan plan(pc);

  std::optional<core::DurableDapspService> d;
  std::uint64_t done = 0;
  try {
    const Graph g = make_graph(a);
    if (a.recover) {
      core::RecoveryReport rr;
      d.emplace(core::DurableDapspService::recover(dcfg, &g, &rr));
      std::fprintf(stderr, "recovery: %s\n", rr.debug_string().c_str());
      const std::span<const std::uint64_t> words = d->plan_words();
      if (words.size() == 3) {
        plan.resume(words[0], words[1]);
        done = words[2];
      } else if (!words.empty()) {
        std::fprintf(stderr, "checkpoint is missing the plan state\n");
        return 1;
      }
    } else {
      d.emplace(g, dcfg);
      std::fprintf(stderr, "initial build: n=%u m=%zu, generation 0 durable\n",
                   g.num_nodes(), g.num_edges());
    }

    const std::uint64_t progress_step =
        a.quiet ? 0 : std::max<std::uint64_t>(1, a.updates / 20);
    for (std::uint64_t u = done; u < a.updates; ++u) {
      const ChurnBatch batch = plan.next(d->service().dynamic_graph());
      const std::uint64_t words[3] = {plan.rng_state(),
                                      plan.batches_generated(), u + 1};
      const core::EpochReport ep = d->ack_and_step(batch, words);
      if (progress_step && (u + 1) % progress_step == 0) {
        std::fprintf(stderr, "[%llu/%llu] %s\n",
                     static_cast<unsigned long long>(u + 1),
                     static_cast<unsigned long long>(a.updates),
                     ep.debug_string().c_str());
      }
      if (a.kill_at && u + 1 == a.kill_at) {
        std::fprintf(stderr, "killed at update %llu (by request)\n",
                     static_cast<unsigned long long>(u + 1));
        return 42;
      }
    }

    // Unconditional: makes the final state (row statuses included) a pure
    // function of the final graph + epoch, whatever the crash history was.
    d->service().scrub();
    d->rotate_checkpoint();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const core::ServiceStats& st = d->service().stats();
  std::printf("service: %s\n", st.debug_string().c_str());
  std::printf("durable: %s\n", d->durable_stats().debug_string().c_str());
  const bool certified = d->service().fully_certified();
  std::printf("final: n_active=%u m=%zu epoch=%llu %s\n",
              d->service().dynamic_graph().num_active(),
              d->service().dynamic_graph().num_edges(),
              static_cast<unsigned long long>(d->service().epoch()),
              certified ? "FULLY-CERTIFIED" : "NOT-CERTIFIED");
  write_outputs(a, trace, st, &d->durable_stats(), &crash);
  if (a.ckpt_dump) {
    const std::vector<std::uint8_t> blob =
        d->service().checkpoint_blob(d->plan_words());
    dump_blob(*a.ckpt_dump, blob);
  }
  return certified ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (a.serve_readers > 0 && a.durable_dir) {
    std::fprintf(stderr, "--serve is not supported with --durable-dir\n");
    return 2;
  }
  if ((a.breaker || a.strangle) && a.durable_dir) {
    // Breaker state is deliberately not checkpointed (a recovered process
    // starts with a closed breaker, like the degraded streak), so gating
    // durable runs would make the kill-matrix non-reproducible.
    std::fprintf(stderr, "--breaker/--strangle require non-durable mode\n");
    return 2;
  }
  if (a.durable_dir) return run_durable(a);
  if (a.recover || a.kill_at_byte) {
    std::fprintf(stderr, "--recover/--kill-at-byte require --durable-dir\n");
    return 2;
  }

  congest::TraceLog trace;
  core::ServiceConfig cfg;
  cfg.engine.threads = a.threads;
  cfg.scrub_every = a.scrub_every;
  if (a.trace_out) cfg.engine.trace = &trace;
  std::optional<core::BreakerRepairGate> gate;
  if (a.breaker) {
    gate.emplace(*a.breaker);
    cfg.repair_gate = &*gate;
  }

  DeltaPlanConfig pc;
  pc.seed = a.seed;
  pc.max_batch = a.batch_max;
  pc.crash_prob = a.chaos;
  pc.corrupt_prob = a.chaos;

  std::optional<ServeSoak> soak;
  if (a.serve_readers > 0) {
    soak.emplace(a.serve_readers, a.serve_lookups);
    cfg.snapshot_sink = soak->sink();
    // Bit-rot is invisible to row statuses until a scrub runs, so a
    // validating soak over it would only measure that documented blind
    // spot; keep crashes, drop corruption.
    if (pc.corrupt_prob > 0.0) {
      std::fprintf(stderr, "serve mode: corrupt_prob forced to 0\n");
      pc.corrupt_prob = 0.0;
    }
  }
  DeltaPlan plan(pc);

  std::optional<core::DapspService> svc;
  std::uint64_t done = 0;
  try {
    if (a.restore_file) {
      std::ifstream in(*a.restore_file, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", a.restore_file->c_str());
        return 1;
      }
      std::vector<std::uint64_t> words;
      svc.emplace(core::DapspService::restore(in, cfg, &words));
      if (words.size() != 3) {
        std::fprintf(stderr, "checkpoint is missing the plan state\n");
        return 1;
      }
      plan.resume(words[0], words[1]);
      done = words[2];
      std::fprintf(stderr, "restored epoch %llu, %llu/%llu updates done\n",
                   static_cast<unsigned long long>(svc->epoch()),
                   static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(a.updates));
      if (soak) {
        // The restore ctor publishes nothing, but a trailing scrub can
        // publish at the restored epoch, so stage its oracle too.
        soak->reserve_epochs(svc->epoch() + (a.updates - done));
        soak->stage_oracle(svc->epoch(), svc->dynamic_graph().snapshot());
        soak->start();
      }
    } else {
      const Graph g = make_graph(a);
      if (soak) {
        // The fresh-build ctor publishes the first snapshot at epoch 0;
        // its oracle must be staged before the service exists.
        soak->reserve_epochs(a.updates);
        soak->stage_oracle(0, g);
        soak->start();
      }
      svc.emplace(g, cfg);
      std::fprintf(stderr, "initial build: n=%u m=%zu, all rows certified\n",
                   g.num_nodes(), g.num_edges());
    }

    std::optional<DynamicGraph> shadow;
    if (soak) shadow.emplace(svc->dynamic_graph());

    const std::uint64_t progress_step =
        a.quiet ? 0 : std::max<std::uint64_t>(1, a.updates / 20);
    for (std::uint64_t u = done; u < a.updates; ++u) {
      if (a.strangle) {
        const bool inside = u + 1 >= a.strangle->first &&
                            u + 1 <= a.strangle->second;
        svc->set_watchdog_rounds(inside ? 1 : cfg.watchdog_rounds);
      }
      const ChurnBatch batch = plan.next(svc->dynamic_graph());
      if (soak) {
        // Mirror step()'s batch application on the shadow graph so the
        // post-batch oracle for the upcoming epoch exists before any
        // snapshot at that epoch is published.
        for (const GraphDelta& d : batch.deltas) shadow->apply(d);
        for (const NodeId v : batch.crashes) {
          if (shadow->active(v)) {
            shadow->apply(GraphDelta{DeltaKind::kNodeLeave, v, v});
          }
        }
        soak->stage_oracle(svc->epoch() + 1, shadow->snapshot());
      }
      const core::EpochReport ep = svc->step(batch);
      if (progress_step && (u + 1) % progress_step == 0) {
        std::fprintf(stderr, "[%llu/%llu] %s\n",
                     static_cast<unsigned long long>(u + 1),
                     static_cast<unsigned long long>(a.updates),
                     ep.debug_string().c_str());
      }
      if (a.checkpoint_every && (u + 1) % a.checkpoint_every == 0) {
        const std::uint64_t words[3] = {plan.rng_state(),
                                        plan.batches_generated(), u + 1};
        std::ofstream out(a.checkpoint_file, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "cannot write %s\n", a.checkpoint_file.c_str());
          return 1;
        }
        svc->checkpoint(out, words);
      }
      if (a.kill_at && u + 1 == a.kill_at) {
        std::fprintf(stderr, "killed at update %llu (by request)\n",
                     static_cast<unsigned long long>(u + 1));
        write_outputs(a, trace, svc->stats());
        return 42;
      }
    }

    // Bit-rot is invisible to the delta analyzer: end with a certificate
    // scrub whenever corruption may still be latent, so exit status reflects
    // the true table state.
    if (svc->stats().corrupted_entries > 0 || !svc->fully_certified()) {
      const core::EpochReport ep = svc->scrub();
      if (!a.quiet) {
        std::fprintf(stderr, "final scrub: %s\n", ep.debug_string().c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  bool overclaims = false;
  if (soak) {
    // Let the readers observe the final (fully certified) snapshot before
    // shutting them down, so short runs still validate something.
    const std::uint64_t want =
        static_cast<std::uint64_t>(a.serve_readers) * a.serve_lookups;
    for (int spin = 0; spin < 4000 && soak->validated() < want; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    soak->stop();
    std::printf(
        "serve soak: readers=%u swaps=%llu validated=%llu wrong=%llu\n",
        a.serve_readers, static_cast<unsigned long long>(soak->swaps()),
        static_cast<unsigned long long>(soak->validated()),
        static_cast<unsigned long long>(soak->wrong()));
    overclaims = soak->wrong() > 0;
  }

  const core::ServiceStats& st = svc->stats();
  std::printf("service: %s\n", st.debug_string().c_str());
  if (gate) {
    std::printf("breaker: state=%s transitions=%llu suppressed=%llu\n",
                core::to_string(static_cast<core::BreakerState>(gate->state())),
                static_cast<unsigned long long>(st.breaker_transitions),
                static_cast<unsigned long long>(st.repairs_suppressed));
  }
  const bool certified = svc->fully_certified();
  std::printf("final: n_active=%u m=%zu epoch=%llu %s\n",
              svc->dynamic_graph().num_active(),
              svc->dynamic_graph().num_edges(),
              static_cast<unsigned long long>(svc->epoch()),
              certified ? "FULLY-CERTIFIED" : "NOT-CERTIFIED");
  write_outputs(a, trace, st);
  if (a.ckpt_dump) {
    const std::uint64_t words[3] = {plan.rng_state(), plan.batches_generated(),
                                    a.updates};
    dump_blob(*a.ckpt_dump, svc->checkpoint_blob(words));
  }
  return (certified && !overclaims) ? 0 : 1;
}
