// dapsp_service — long-running DAPSP service soak driver.
//
// Builds an initial graph, then sustains a seeded churn stream (edge
// inserts/removes, node joins/leaves) interleaved with crash-stops and
// stored-entry bit-rot, healing incrementally every epoch and checkpointing
// on a cadence. The process exits 0 iff the final tables are fully certified
// against the final graph — the soak contract CI leans on.
//
//   dapsp_service --universe 24 --updates 500 --chaos 0.05 --scrub-every 50
//   dapsp_service --updates 200 --checkpoint-every 20 --kill-at 117
//       (dies mid-run with exit 42; --restore <ckpt> resumes bit-identically)
//   dapsp_service --restore s.ckpt --updates 200 ...  # resumes bit-identically
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "congest/trace.h"
#include "core/service.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/metrics.h"

using namespace dapsp;

namespace {

struct Args {
  std::string gen = "random";  // random|grid|path|cycle|tree
  std::optional<std::string> graph_file;
  NodeId universe = 24;
  std::uint64_t updates = 500;
  std::uint64_t seed = 1;
  std::uint32_t batch_max = 3;
  double chaos = 0.0;  // crash_prob and corrupt_prob per batch
  std::uint32_t threads = 1;
  std::uint32_t scrub_every = 0;
  std::uint64_t checkpoint_every = 0;
  std::string checkpoint_file = "dapsp_service.ckpt";
  std::optional<std::string> restore_file;
  std::uint64_t kill_at = 0;  // die right after this update (0 = never)
  std::optional<std::string> trace_out;
  std::optional<std::string> metrics_out;
  bool quiet = false;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: dapsp_service [options]\n"
      "  --gen <family>         random|grid|path|cycle|tree (default random)\n"
      "  -g <file>              initial graph from an edge list instead\n"
      "  --universe <n>         node universe for --gen (default 24)\n"
      "  --updates <k>          churn batches to run (default 500)\n"
      "  --seed <s>             generator + churn plan seed (default 1)\n"
      "  --batch-max <k>        max deltas per batch (default 3)\n"
      "  --chaos <p>            per-batch crash AND bit-rot probability\n"
      "  --threads <t>          engine workers (identical results at any t)\n"
      "  --scrub-every <k>      certificate scrub after every k-th epoch\n"
      "  --checkpoint-every <k> checkpoint after every k-th update\n"
      "  --checkpoint-file <f>  checkpoint path (default dapsp_service.ckpt)\n"
      "  --restore <f>          resume from a checkpoint file\n"
      "  --kill-at <k>          exit abruptly (code 42) after update k\n"
      "  --trace-out <f>        service delta/epoch trace (.json/.jsonl/.csv)\n"
      "  --metrics-out <f>      service counters (.json or .csv)\n"
      "  --quiet                suppress per-epoch progress lines\n"
      "exit codes: 0 final tables fully certified   1 not certified/error\n"
      "            2 usage                          42 --kill-at fired\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--gen") {
      a.gen = next();
    } else if (arg == "-g" || arg == "--graph") {
      a.graph_file = next();
    } else if (arg == "--universe") {
      a.universe = static_cast<NodeId>(std::stoul(next()));
    } else if (arg == "--updates") {
      a.updates = std::stoull(next());
    } else if (arg == "--seed") {
      a.seed = std::stoull(next());
    } else if (arg == "--batch-max") {
      a.batch_max = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--chaos") {
      a.chaos = std::stod(next());
    } else if (arg == "--threads") {
      a.threads = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--scrub-every") {
      a.scrub_every = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--checkpoint-every") {
      a.checkpoint_every = std::stoull(next());
    } else if (arg == "--checkpoint-file") {
      a.checkpoint_file = next();
    } else if (arg == "--restore") {
      a.restore_file = next();
    } else if (arg == "--kill-at") {
      a.kill_at = std::stoull(next());
    } else if (arg == "--trace-out") {
      a.trace_out = next();
    } else if (arg == "--metrics-out") {
      a.metrics_out = next();
    } else if (arg == "--quiet") {
      a.quiet = true;
    } else {
      usage();
    }
  }
  return a;
}

Graph make_graph(const Args& a) {
  if (a.graph_file) {
    std::ifstream in(*a.graph_file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", a.graph_file->c_str());
      std::exit(1);
    }
    return io::read_edge_list(in);
  }
  const NodeId n = a.universe;
  if (a.gen == "random") return gen::random_connected(n, n / 2, a.seed);
  if (a.gen == "path") return gen::path(n);
  if (a.gen == "cycle") return gen::cycle(n);
  if (a.gen == "tree") return gen::balanced_tree(n, 2);
  if (a.gen == "grid") {
    NodeId rows = static_cast<NodeId>(std::sqrt(static_cast<double>(n)));
    while (rows > 1 && n % rows != 0) --rows;
    return gen::grid(rows, n / rows);
  }
  std::fprintf(stderr, "unknown --gen family %s\n", a.gen.c_str());
  std::exit(2);
}

bool has_suffix(const std::string& s, const char* suffix) {
  const std::size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

std::ofstream open_or_die(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  return out;
}

void write_outputs(const Args& a, const congest::TraceLog& trace,
                   const core::ServiceStats& st) {
  if (a.trace_out) {
    std::ofstream out = open_or_die(*a.trace_out);
    if (has_suffix(*a.trace_out, ".jsonl")) {
      trace.write_jsonl(out);
    } else if (has_suffix(*a.trace_out, ".csv")) {
      trace.write_csv(out);
    } else {
      trace.write_chrome_json(out);
    }
    std::fprintf(stderr, "trace: %zu events -> %s\n", trace.size(),
                 a.trace_out->c_str());
  }
  if (a.metrics_out) {
    MetricsRegistry reg;
    reg.counter("service_epochs") = st.epochs;
    reg.counter("service_deltas") = st.deltas_applied;
    reg.counter("service_crashes") = st.crashes;
    reg.counter("service_corrupted") = st.corrupted_entries;
    reg.counter("service_rows_repaired") = st.rows_repaired;
    reg.counter("service_epochs_failed") = st.epochs_failed;
    reg.counter("service_scrubs") = st.scrubs;
    reg.counter("service_checkpoints") = st.checkpoints;
    reg.counter("repairs_attempted") = st.run.repairs_attempted;
    reg.counter("repairs_escalated") = st.run.repairs_escalated;
    reg.counter("checkpoint_bytes") = st.run.checkpoint_bytes;
    reg.counter("rounds") = st.run.rounds;
    reg.counter("messages") = st.run.messages;
    reg.counter("total_bits") = st.run.total_bits;
    std::ofstream out = open_or_die(*a.metrics_out);
    if (has_suffix(*a.metrics_out, ".csv")) {
      reg.write_csv(out);
    } else {
      reg.write_json(out);
    }
    std::fprintf(stderr, "metrics -> %s\n", a.metrics_out->c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);

  congest::TraceLog trace;
  core::ServiceConfig cfg;
  cfg.engine.threads = a.threads;
  cfg.scrub_every = a.scrub_every;
  if (a.trace_out) cfg.engine.trace = &trace;

  DeltaPlanConfig pc;
  pc.seed = a.seed;
  pc.max_batch = a.batch_max;
  pc.crash_prob = a.chaos;
  pc.corrupt_prob = a.chaos;
  DeltaPlan plan(pc);

  std::optional<core::DapspService> svc;
  std::uint64_t done = 0;
  try {
    if (a.restore_file) {
      std::ifstream in(*a.restore_file, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", a.restore_file->c_str());
        return 1;
      }
      std::vector<std::uint64_t> words;
      svc.emplace(core::DapspService::restore(in, cfg, &words));
      if (words.size() != 3) {
        std::fprintf(stderr, "checkpoint is missing the plan state\n");
        return 1;
      }
      plan.resume(words[0], words[1]);
      done = words[2];
      std::fprintf(stderr, "restored epoch %llu, %llu/%llu updates done\n",
                   static_cast<unsigned long long>(svc->epoch()),
                   static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(a.updates));
    } else {
      const Graph g = make_graph(a);
      svc.emplace(g, cfg);
      std::fprintf(stderr, "initial build: n=%u m=%zu, all rows certified\n",
                   g.num_nodes(), g.num_edges());
    }

    const std::uint64_t progress_step =
        a.quiet ? 0 : std::max<std::uint64_t>(1, a.updates / 20);
    for (std::uint64_t u = done; u < a.updates; ++u) {
      const ChurnBatch batch = plan.next(svc->dynamic_graph());
      const core::EpochReport ep = svc->step(batch);
      if (progress_step && (u + 1) % progress_step == 0) {
        std::fprintf(stderr, "[%llu/%llu] %s\n",
                     static_cast<unsigned long long>(u + 1),
                     static_cast<unsigned long long>(a.updates),
                     ep.debug_string().c_str());
      }
      if (a.checkpoint_every && (u + 1) % a.checkpoint_every == 0) {
        const std::uint64_t words[3] = {plan.rng_state(),
                                        plan.batches_generated(), u + 1};
        std::ofstream out(a.checkpoint_file, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "cannot write %s\n", a.checkpoint_file.c_str());
          return 1;
        }
        svc->checkpoint(out, words);
      }
      if (a.kill_at && u + 1 == a.kill_at) {
        std::fprintf(stderr, "killed at update %llu (by request)\n",
                     static_cast<unsigned long long>(u + 1));
        write_outputs(a, trace, svc->stats());
        return 42;
      }
    }

    // Bit-rot is invisible to the delta analyzer: end with a certificate
    // scrub whenever corruption may still be latent, so exit status reflects
    // the true table state.
    if (svc->stats().corrupted_entries > 0 || !svc->fully_certified()) {
      const core::EpochReport ep = svc->scrub();
      if (!a.quiet) {
        std::fprintf(stderr, "final scrub: %s\n", ep.debug_string().c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const core::ServiceStats& st = svc->stats();
  std::printf("service: %s\n", st.debug_string().c_str());
  const bool certified = svc->fully_certified();
  std::printf("final: n_active=%u m=%zu epoch=%llu %s\n",
              svc->dynamic_graph().num_active(),
              svc->dynamic_graph().num_edges(),
              static_cast<unsigned long long>(svc->epoch()),
              certified ? "FULLY-CERTIFIED" : "NOT-CERTIFIED");
  write_outputs(a, trace, st);
  return certified ? 0 : 1;
}
